//! Update-dissemination protocols — §5 of the paper.
//!
//! Given a constructed d3g, a node receiving an update must decide which
//! dependents to push it to. Three policies are implemented:
//!
//! * [`naive`] — Eq. (3) only: push to `q` iff `|v − last_q| > c_q`.
//!   Necessary but **not sufficient**; Figure 4 of the paper (reproduced in
//!   this module's tests) shows it silently strands dependents.
//! * [`distributed`] — Eq. (3) ∨ Eq. (7): push iff
//!   `|v − last_q| > c_q − c_p`. Guarantees no missed updates with only
//!   per-edge state.
//! * [`centralized`] — the source tags each update with the largest
//!   violated coherency tolerance in the system; repositories forward by
//!   comparing their dependents' tolerances against the tag.
//!
//! All protocol state lives in [`Disseminator`], which is driven either by
//! the discrete-event simulator (`d3t-sim`) or directly (zero-delay
//! semantics) via [`Disseminator::run_zero_delay`] — the configuration
//! under which the paper proves both non-naive protocols achieve 100%
//! fidelity.
//!
//! # Performance model
//!
//! Every per-event decision is one scan over one contiguous CSR row, and
//! all four protocols are parameterizations of the batched check kernel
//! in [`kernel`]:
//!
//! * The d3g is compiled once into **structure-of-arrays CSR**: per edge,
//!   the dependent (`child_node`), its effective coherency (`child_c`)
//!   and the last value sent to it (`child_last`) sit in three parallel
//!   flat arrays sliced by the per-row records. Keeping `last_sent`
//!   **per edge** (mirrored from the receiver-indexed row record on
//!   every delivery, see `Disseminator::record_at`) is what turns the
//!   deviation filter from a gather (`last[child.index()]`) into a pure
//!   sequential sweep the compiler autovectorizes — see [`kernel`] for
//!   the chunked mask-accumulate shape and [`kernel::ForwardScratch`]
//!   for the allocation-free caller contract.
//! * The hot entry points are the sink-style
//!   [`Disseminator::on_source_update_into`] /
//!   [`Disseminator::on_repo_update_into`]: they fill a caller-owned
//!   [`ForwardScratch`] and never allocate once its buffer has grown to
//!   the widest row. The [`Forwarding`]-returning methods remain as the
//!   branchy **scalar oracle** (one allocation per decision, reads the
//!   receiver-indexed array) — `tests/kernel_properties.rs` pins both
//!   paths bit-identical decision by decision, and the sealed
//!   `Engine::run` loop in `d3t-sim` drives the oracle so whole runs are
//!   cross-checked too.
//! * The centralized source's per-item unique-tolerance list is two
//!   parallel sorted arrays (`SourceList`); tagging is a branch-free
//!   max-violated scan plus one prefix `fill` ([`kernel::tag_scan`]).
//! * **Checks accounting invariant:** every scan performs exactly one
//!   filter evaluation per candidate — per CSR-row dependent for the
//!   tree filters (forwarded or not, flood included) and per unique
//!   tolerance class for the centralized source's tag scan (violated or
//!   not, no early exit) — so Figure 11's check counts compare protocols
//!   apples-to-apples. The invariant is pinned by
//!   `checks_count_one_evaluation_per_candidate` below.
//! * **Run-level sweeps:** above the per-event sinks sits
//!   [`Disseminator::on_run_into`], which takes one staged drain run as
//!   a flat [`RunTouch`] slice and emits every decision into a reusable
//!   span-indexed [`RunDecisions`] (`spans[k]..spans[k+1]` slices the
//!   recipients of touch `k`). The sweep visits touches in caller order
//!   — the session groups a run by item only when it is long enough for
//!   items to repeat — and prefetches the CSR row of the touch four
//!   positions ahead. Distance matters: issuing a whole run's prefetches
//!   up front at gather time floods the core's line-fill buffers and
//!   most of them are dropped (measured ~8% whole-run regression), while
//!   an in-pass distance-4 stream keeps the row table one access ahead
//!   of the scan.
//! * Measured (1-core container, `deviation_kernel` bench): ~1.0 G
//!   checks/s on a hot 600-wide fanout row (raw scan; ~0.59 G driven
//!   through `on_source_update_into`, vs ~0.33 G for the scalar oracle)
//!   and ~1.4 G class-checks/s on a 128-class tag scan. At the
//!   whole-run level, paper-scale drain runs average ~33 events over
//!   ~100 items (≈1.3 touches per touched item), so item grouping buys
//!   no locality there — run batching's wins come from bulk queue ops
//!   and per-run (not per-event) telemetry stamping; see
//!   `d3t-sim::session` for the per-phase cycle split.

pub mod centralized;
pub mod distributed;
pub mod kernel;
pub mod naive;

use serde::{Deserialize, Serialize};

use crate::coherency::{Coherency, VALUE_EPSILON};
use crate::graph::D3g;
use crate::item::ItemId;
use crate::overlay::{NodeIdx, SOURCE};

pub use kernel::{EdgeState, ForwardScratch};

/// Which dissemination policy a [`Disseminator`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Eq. (3) only — the strawman with the missed-updates problem.
    Naive,
    /// Eq. (3) ∨ Eq. (7) — the repository-based approach (§5.1).
    Distributed,
    /// Source-tagged dissemination — the source-based approach (§5.2).
    Centralized,
    /// Push every source update to every interested repository, ignoring
    /// tolerances. Emulates the unfiltered system of Figure 8.
    FloodAll,
}

/// One update traveling through the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// The item that changed.
    pub item: ItemId,
    /// Its new value.
    pub value: f64,
    /// Tag attached by the centralized source: the largest violated
    /// tolerance. `None` for the other protocols.
    pub tag: Option<Coherency>,
}

/// The forwarding decision a node makes for one incoming update — the
/// allocating return value of the **scalar oracle** methods
/// ([`Disseminator::on_source_update`] /
/// [`Disseminator::on_repo_update`]). The allocation-free hot path fills
/// a reusable [`ForwardScratch`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Forwarding {
    /// Dependents the update must be pushed to.
    pub to: Vec<NodeIdx>,
    /// The update as it should be forwarded (tag preserved).
    pub update: Update,
    /// Number of filter evaluations performed making this decision —
    /// the "checks" metric of Figure 11.
    pub checks: u64,
}

/// Flag bit a sharded caller sets in [`RunTouch::idx`] to mark a
/// **mirror** touch: a delivery replayed on a replica that does not own
/// the receiving node. [`Disseminator::on_run_into`] then applies only
/// the state write ([`Disseminator::record_at`]'s row + parent-edge
/// update — what a later decision *at an ancestor the replica does own*
/// reads) and makes no forwarding decision for it. The bit lives in the
/// staging index, so mirror-carrying runs must be staged in pop order,
/// never sorted by [`RunTouch::group_key`].
pub const MIRROR_TOUCH_BIT: u32 = 1 << 31;

/// One staged event of a reorder-free run — the unit
/// [`Disseminator::on_run_into`] and the fidelity tracker's
/// run sink consume. A touch is either a source tick (`node ==
/// SOURCE`) or a delivered arrival, flattened so a whole run can be
/// staged structure-of-arrays style, sorted by `(item, idx)` and swept
/// per item.
#[derive(Debug, Clone, Copy)]
pub struct RunTouch {
    /// Position of the event in the run's original (pop) order — what
    /// the caller scatters results back through. The top bit is
    /// reserved: [`MIRROR_TOUCH_BIT`].
    pub idx: u32,
    /// Receiving node; [`SOURCE`] marks a source tick.
    pub node: NodeIdx,
    /// The item touched.
    pub item: ItemId,
    /// Event time, µs (runs may span several distinct timestamps).
    pub at_us: u64,
    /// The new value.
    pub value: f64,
    /// Centralized tag carried by an arrival (raw tolerance value);
    /// NaN = untagged.
    pub tag: f64,
}

impl RunTouch {
    /// The touch's payload as an [`Update`] (tag re-boxed).
    #[inline]
    pub fn update(&self) -> Update {
        let tag = if self.tag.is_nan() { None } else { Some(Coherency::new(self.tag)) };
        Update { item: self.item, value: self.value, tag }
    }

    /// Sort key grouping a run by item while keeping original event
    /// order within an item (the order protocol state updates must
    /// replay in).
    #[inline]
    pub fn group_key(&self) -> u64 {
        (u64::from(self.item.0) << 32) | u64::from(self.idx)
    }
}

/// The forwarding decisions for one staged run, flat and reusable: per
/// touch (in staged order) one outgoing [`Update`] plus a span into the
/// shared `to` buffer. The run-level [`ForwardScratch`] — grows to the
/// widest run seen, then the deliver path never allocates.
#[derive(Debug, Clone, Default)]
pub struct RunDecisions {
    /// Forwarding targets of every touch, concatenated in staged order.
    to: Vec<NodeIdx>,
    /// Span starts into `to`, one per touch plus a final sentinel:
    /// touch `k` forwards to `to[spans[k]..spans[k + 1]]`.
    spans: Vec<u32>,
    /// The outgoing update per touch (source ticks may gain a tag).
    updates: Vec<Update>,
    /// Filter evaluations performed for source-tick touches.
    pub source_checks: u64,
    /// Filter evaluations performed for arrival touches.
    pub repo_checks: u64,
}

impl RunDecisions {
    /// An empty decision buffer; reuse one instance across runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffer for a new run, keeping capacity.
    pub fn clear(&mut self) {
        self.to.clear();
        self.spans.clear();
        self.updates.clear();
        self.source_checks = 0;
        self.repo_checks = 0;
    }

    /// The forwarding targets decided for staged touch `k`, in CSR row
    /// order.
    #[inline]
    pub fn to_of(&self, k: usize) -> &[NodeIdx] {
        &self.to[self.spans[k] as usize..self.spans[k + 1] as usize]
    }

    /// The update staged touch `k` forwards.
    #[inline]
    pub fn update_of(&self, k: usize) -> Update {
        self.updates[k]
    }
}

/// Centralized-only per-item source state: the sorted, deduplicated
/// unique-tolerance classes present in the d3g (`c`) and the last value
/// disseminated to each class (`last`), as two parallel arrays so the
/// tag scan streams both contiguously.
#[derive(Debug, Clone, Default)]
pub(super) struct SourceList {
    pub(super) c: Vec<f64>,
    pub(super) last: Vec<f64>,
}

/// All per-node protocol state for one d3g.
///
/// `last_sent[(parent-side) item][child]` bookkeeping lives with the
/// *sender*, exactly as §5.1 describes: a repository `p` remembers, per
/// dependent `q` and item, the last value it pushed to `q`. Because each
/// node has exactly one parent per item, that record equals the
/// receiver's "last received" — the state is kept **twice**, once
/// receiver-indexed (the row record's `last`, the `value_at` view) and
/// once per CSR edge (`child_edges[..].last`, the contiguous row the
/// kernel scans), with `Disseminator::record_at` the single writer that
/// keeps the mirror exact.
#[derive(Debug, Clone)]
pub struct Disseminator {
    protocol: Protocol,
    /// Centralized-only: per item, the unique-tolerance class list.
    source_lists: Vec<SourceList>,
    n_items: usize,
    /// Row stride of `last_received`.
    n_nodes: usize,
    /// Per-row hot metadata, one 24-byte record per
    /// `item * n_nodes + node` row — everything an arrival needs to know
    /// about its row in **one cache line touch** (CSR bounds, own
    /// effective coherency, the edge slot in the parent's row).
    rows: Vec<RowMeta>,
    /// CSR forwarding table compiled from the d3g at construction:
    /// `child_edges[start..start + len]` (bounds from [`RowMeta`]) are
    /// the dependents of a row, each edge one interleaved
    /// `(effective coherency, last sent, node)` record, so a forwarding
    /// decision streams through one flat array instead of chasing the
    /// d3g's nested `Vec`s and re-deriving `effective()` per event.
    child_edges: Vec<EdgeState>,
    /// Parent per `item * n_nodes + node` row ([`NO_PARENT`] for the
    /// source and for nodes not holding the item). Every holder has
    /// exactly one parent per item, so this doubles as the holds-item
    /// mask; it is what lets [`Disseminator::renegotiate`] patch the CSR
    /// in place instead of recompiling the d3g.
    parent: Vec<u32>,
    /// Fail-stop state per node: an inactive repository neither records
    /// nor forwards updates (see [`Disseminator::set_node_active`]).
    active: Vec<bool>,
    /// Live re-parenting registry (see [`Disseminator::reparent`]):
    /// children currently served by a foster parent because their
    /// original parent crashed. Empty in every fault-free run — all
    /// adopted-edge work in the decision paths is gated on this, so the
    /// hot path pays one predictable `is_empty` branch and nothing else.
    adoptions: Vec<Adoption>,
}

/// One re-parented child: the CSR edge slot stays physically inside the
/// original parent's row (rows are contiguous spans, so the slot cannot
/// move), but the child is *logically* served by `foster` until
/// [`Disseminator::restore_children_of`] hands it back. Keeping the slot
/// in place means `record_at`'s per-edge mirror and `renegotiate`'s O(1)
/// `parent_edge` patch keep writing the same memory whether or not the
/// child is adopted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Adoption {
    /// Item of the re-parented subscription.
    item: u32,
    /// The re-parented child node.
    child: u32,
    /// The surviving ancestor currently serving the child.
    foster: u32,
    /// The crashed original parent (restore target on recovery).
    original: u32,
}

/// Hot per-row record: the node's current copy of the row's item, CSR
/// bounds, the node's own effective coherency, and the node's edge slot
/// in its parent's row. Exactly 32 bytes (a power of two, so a record
/// never straddles a cache line): everything an arrival reads *and* the
/// value write it performs land in a single line fill instead of three
/// parallel-array misses.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Last value the row's node *received* for the row's item (for the
    /// source: the last raw value) — the receiver-indexed view backing
    /// [`Disseminator::value_at`]; the kernel scans the per-edge
    /// `child_edges` mirror instead.
    last: f64,
    /// The node's effective coherency for the row's item (raw value;
    /// `0.0` = EXACT for the source and for rows whose node does not
    /// hold the item — never read by the protocols, which only walk
    /// edges the d3g created).
    eff: f64,
    /// First edge of the row in the CSR arrays.
    start: u32,
    /// Number of edges in the row.
    len: u32,
    /// The CSR edge slot of this node inside its parent's row
    /// ([`NO_EDGE`] where `parent` is [`NO_PARENT`]). Makes the
    /// per-edge mirror write and the renegotiation patch O(1) instead
    /// of a parent-row scan.
    parent_edge: u32,
}

/// `parent` sentinel: the row's node has no dissemination parent.
const NO_PARENT: u32 = u32::MAX;
/// `parent_edge` sentinel: the row's node sits in no parent's CSR row.
const NO_EDGE: u32 = u32::MAX;

impl Disseminator {
    /// Initializes protocol state for `d3g`, with every node assumed
    /// coherent at `initial_values[item]` (the first tick of each trace).
    pub fn new(protocol: Protocol, d3g: &D3g, initial_values: &[f64]) -> Self {
        assert_eq!(initial_values.len(), d3g.n_items(), "one initial value per item");
        let n_items = d3g.n_items();
        let n_nodes = d3g.n_nodes();
        let mut child_edges: Vec<EdgeState> = Vec::new();
        let mut rows = Vec::with_capacity(n_items * n_nodes);
        let mut parent = vec![NO_PARENT; n_items * n_nodes];
        // A child's row may precede its parent's in row order, so edge
        // slots are collected first and folded into the row records after
        // the full CSR is laid out.
        let mut parent_edge = vec![NO_EDGE; n_items * n_nodes];
        for i in 0..n_items {
            let item = ItemId(i as u32);
            for n in 0..n_nodes {
                let node = NodeIdx(n as u32);
                let start = child_edges.len() as u32;
                for &ch in d3g.children_of(node, item) {
                    let c = d3g
                        .effective(ch, item)
                        // d3t-lint: allow(P001) -- d3g.validate() guarantees every child edge has an effective coherency
                        .expect("child subscribed to an item it does not hold");
                    parent[i * n_nodes + ch.index()] = node.0;
                    parent_edge[i * n_nodes + ch.index()] = child_edges.len() as u32;
                    child_edges.push(EdgeState {
                        c: c.value(),
                        last: initial_values[i],
                        node: ch.0,
                    });
                }
                rows.push(RowMeta {
                    last: initial_values[i],
                    eff: d3g.effective(node, item).unwrap_or(Coherency::EXACT).value(),
                    start,
                    len: child_edges.len() as u32 - start,
                    parent_edge: NO_EDGE,
                });
            }
        }
        for (row, pe) in rows.iter_mut().zip(parent_edge) {
            row.parent_edge = pe;
        }
        let source_lists = if protocol == Protocol::Centralized {
            (0..n_items)
                .map(|i| {
                    let item = ItemId(i as u32);
                    let mut cs: Vec<Coherency> = (1..d3g.n_nodes())
                        .filter_map(|n| d3g.effective(NodeIdx(n as u32), item))
                        .collect();
                    cs.sort();
                    cs.dedup();
                    SourceList {
                        last: vec![initial_values[i]; cs.len()],
                        c: cs.into_iter().map(Coherency::value).collect(),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            protocol,
            source_lists,
            n_items,
            n_nodes,
            rows,
            child_edges,
            parent,
            active: vec![true; n_nodes],
            adoptions: Vec::new(),
        }
    }

    /// The protocol in force.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The last value `node` received for `item` (receiver-indexed view).
    #[inline]
    fn last(&self, item: ItemId, node: NodeIdx) -> f64 {
        self.rows[item.index() * self.n_nodes + node.index()].last
    }

    /// Records a freshly received value: writes the receiver-indexed
    /// row record **and** the node's per-edge mirror in its parent's
    /// CSR row (via [`Disseminator::record_at`], the single writer that
    /// keeps both views of "last sent to q" exact).
    #[inline]
    fn record(&mut self, item: ItemId, node: NodeIdx, value: f64) {
        let row = item.index() * self.n_nodes + node.index();
        let e = self.rows[row].parent_edge;
        self.record_at(row, e, value);
    }

    /// The single writer of a node's received value: updates the row
    /// record and, when the row has a parent, the per-edge `last_sent`
    /// mirror in the parent's CSR run. Every delivery goes through here
    /// (callers that already hold the row's metadata pass it in to
    /// avoid a reload), which is what keeps the two views exact mirrors.
    #[inline]
    fn record_at(&mut self, row: usize, parent_edge: u32, value: f64) {
        self.rows[row].last = value;
        if parent_edge != NO_EDGE {
            self.child_edges[parent_edge as usize].last = value;
        }
    }

    /// Replays a delivery's state write on a **replica** disseminator
    /// that did not process the delivery itself — the sharded engine's
    /// barrier-time reconciliation primitive (value logs, and source
    /// ticks on non-owning shards). Identical to what processing the
    /// delivery would have written: the receiver-indexed row record and
    /// the per-edge `last_sent` mirror in the parent's CSR run. Makes
    /// no forwarding decision and touches no liveness or adoption
    /// state.
    #[inline]
    pub fn record_replica(&mut self, item: ItemId, node: NodeIdx, value: f64) {
        self.record(item, node, value);
    }

    /// CSR bounds of `node`'s row for `item`.
    #[inline]
    fn row_range(&self, node: NodeIdx, item: ItemId) -> std::ops::Range<usize> {
        let m = self.rows[item.index() * self.n_nodes + node.index()];
        m.start as usize..(m.start + m.len) as usize
    }

    /// One compiled CSR edge (scalar-oracle access; the kernel paths
    /// slice the edge array directly).
    #[inline]
    fn edge(&self, e: usize) -> EdgeState {
        self.child_edges[e]
    }

    /// The compiled `(dependent, effective c)` entries of `node`'s row
    /// for `item` (test helper; the hot paths slice the edge array
    /// directly).
    #[cfg(test)]
    pub(crate) fn children_of_compiled(
        &self,
        node: NodeIdx,
        item: ItemId,
    ) -> Vec<(NodeIdx, Coherency)> {
        self.row_range(node, item)
            .map(|e| (NodeIdx(self.child_edges[e].node), Coherency::new(self.child_edges[e].c)))
            .collect()
    }

    /// The effective coherency `node` holds `item` at (EXACT for the
    /// source).
    #[inline]
    fn eff_of(&self, node: NodeIdx, item: ItemId) -> Coherency {
        Coherency::new(self.rows[item.index() * self.n_nodes + node.index()].eff)
    }

    /// Appends `node`'s *adopted* dependents for `update` to `out_to`,
    /// returning the filter evaluations performed — the scalar tail every
    /// decision path (kernel and oracle alike) runs after its CSR-row
    /// scan. Adopted edges are scattered through other rows, so they are
    /// filtered one by one with exactly the kernel's predicates (same
    /// bias, same epsilon) and count one check per candidate, keeping the
    /// Figure-11 accounting invariant. Gated on the registry being empty:
    /// fault-free runs take one branch here and nothing else.
    #[inline]
    fn adopted_into(&self, node: NodeIdx, update: Update, out_to: &mut Vec<NodeIdx>) -> u64 {
        if self.adoptions.is_empty() {
            return 0;
        }
        self.scan_adopted(node, update, out_to)
    }

    /// The out-of-line body of [`Disseminator::adopted_into`] — only runs
    /// while at least one child is re-parented somewhere in the overlay.
    fn scan_adopted(&self, node: NodeIdx, update: Update, out_to: &mut Vec<NodeIdx>) -> u64 {
        // A quiet centralized source tick never enters the tree: the
        // kernel path skips its row scan in that case, so adopted edges
        // are skipped (and not counted) too.
        if self.protocol == Protocol::Centralized && update.tag.is_none() {
            return 0;
        }
        let base = update.item.index() * self.n_nodes;
        let mut checks = 0u64;
        for a in &self.adoptions {
            if a.foster != node.0 || a.item != update.item.0 {
                continue;
            }
            let e = self.child_edges[self.rows[base + a.child as usize].parent_edge as usize];
            checks += 1;
            let keep = match self.protocol {
                // d3t-lint: allow(P001) -- the protocol match above only reaches here with a tagged update
                Protocol::Centralized => e.c <= update.tag.expect("tag checked above").value(),
                Protocol::Naive => (update.value - e.last).abs() > e.c + VALUE_EPSILON,
                Protocol::Distributed => {
                    let bias = self.rows[base + node.index()].eff;
                    (update.value - e.last).abs() > e.c - bias + VALUE_EPSILON
                }
                Protocol::FloodAll => true,
            };
            if keep {
                out_to.push(NodeIdx(a.child));
            }
        }
        checks
    }

    /// Handles a raw source tick: decides which of the source's dependents
    /// receive the update, filling the caller-owned `out` scratch. Works
    /// entirely off the CSR snapshot compiled in [`Disseminator::new`] —
    /// the d3g is not consulted after construction — and performs **no
    /// heap allocation** once `out` has warmed up: this is the kernel
    /// hot path the simulator's deliver loop runs.
    pub fn on_source_update_into(&mut self, item: ItemId, value: f64, out: &mut ForwardScratch) {
        self.record(item, SOURCE, value);
        match self.protocol {
            Protocol::Centralized => {
                let list = &mut self.source_lists[item.index()];
                let (hit, checks) = kernel::tag_scan(value, &list.c, &mut list.last);
                match hit {
                    None => out.reset(Update { item, value, tag: None }, checks),
                    Some(k) => {
                        let tag = list.c[k];
                        out.reset(Update { item, value, tag: Some(Coherency::new(tag)) }, checks);
                        let r = self.row_range(SOURCE, item);
                        out.checks += kernel::tag_filter(tag, &self.child_edges[r], &mut out.to);
                    }
                }
            }
            Protocol::Naive | Protocol::Distributed => {
                let bias = match self.protocol {
                    Protocol::Distributed => self.eff_of(SOURCE, item).value(),
                    _ => 0.0,
                };
                out.reset(Update { item, value, tag: None }, 0);
                let r = self.row_range(SOURCE, item);
                out.checks = kernel::deviation_scan(value, bias, &self.child_edges[r], &mut out.to);
            }
            Protocol::FloodAll => {
                out.reset(Update { item, value, tag: None }, 0);
                let r = self.row_range(SOURCE, item);
                out.checks = kernel::flood(&self.child_edges[r], &mut out.to);
            }
        }
        let u = out.update;
        out.checks += self.adopted_into(SOURCE, u, &mut out.to);
    }

    /// Handles an update arriving at repository `node`: records the new
    /// local value and decides which dependents to forward to, filling
    /// the caller-owned `out` scratch — the allocation-free counterpart
    /// of [`Disseminator::on_repo_update`].
    pub fn on_repo_update_into(&mut self, node: NodeIdx, update: Update, out: &mut ForwardScratch) {
        assert!(!node.is_source(), "use on_source_update_into for the source");
        out.reset(update, 0);
        if !self.active[node.index()] {
            // Fail-stop: a crashed repository neither records the value
            // nor forwards it (see the scalar oracle for the recovery
            // story).
            return;
        }
        // One row-record load serves the whole arrival: the value cell,
        // the mirror slot, CSR bounds, and the node's own coherency for
        // the Eq.-7 bias — the value write lands in the line the load
        // just filled.
        let row = update.item.index() * self.n_nodes + node.index();
        let meta = self.rows[row];
        self.record_at(row, meta.parent_edge, update.value);
        let r = meta.start as usize..(meta.start + meta.len) as usize;
        out.checks = match self.protocol {
            Protocol::Centralized => {
                // d3t-lint: allow(P001) -- the source arm stamps a tag on every centralized update
                let tag = update.tag.expect("centralized updates always carry a tag");
                kernel::tag_filter(tag.value(), &self.child_edges[r], &mut out.to)
            }
            Protocol::Naive => {
                kernel::deviation_scan(update.value, 0.0, &self.child_edges[r], &mut out.to)
            }
            Protocol::Distributed => {
                kernel::deviation_scan(update.value, meta.eff, &self.child_edges[r], &mut out.to)
            }
            Protocol::FloodAll => kernel::flood(&self.child_edges[r], &mut out.to),
        };
        out.checks += self.adopted_into(node, update, &mut out.to);
    }

    /// Decides a whole reorder-free run of staged touches in one call —
    /// the run-level counterpart of [`Disseminator::on_source_update_into`]
    /// / [`Disseminator::on_repo_update_into`], sharing their scan kernels
    /// ([`kernel::deviation_scan`] / [`kernel::tag_scan`] /
    /// [`kernel::tag_filter`] / [`kernel::flood`]) decision for decision.
    ///
    /// The caller may stage the run in any order that keeps same-item
    /// touches in their original relative order: all protocol state is
    /// strictly per item — `rows` / `child_edges` rows, the centralized
    /// `SourceList` — so reordering decisions across *different* items
    /// cannot change any decision. Pop order qualifies trivially; a
    /// stable sort by `(item, idx)` additionally makes the sweep walk
    /// the CSR check table contiguously, which pays once items repeat
    /// within the run (long runs) and not before. Results land in `out`
    /// **in the staged order**; callers scatter them back to original
    /// event order via [`RunTouch::idx`].
    ///
    /// Dropped arrivals (inactive node) must be filtered out by the
    /// caller before staging: the liveness mask cannot change inside a
    /// reorder-free run, so gather-time filtering is exact.
    pub fn on_run_into(&mut self, touches: &[RunTouch], out: &mut RunDecisions) {
        out.clear();
        out.spans.reserve(touches.len() + 1);
        out.updates.reserve(touches.len());
        // Prefetch a few touches ahead (not the whole run at once): the
        // row table is tens of MB, and a deeper-than-LFB burst of
        // prefetches just drops most of them.
        const AHEAD: usize = 4;
        for t in touches.iter().take(AHEAD) {
            if !t.node.is_source() {
                self.prefetch_row(t.node, t.item);
            }
        }
        for (k, t) in touches.iter().enumerate() {
            if let Some(next) = touches.get(k + AHEAD) {
                if !next.node.is_source() {
                    self.prefetch_row(next.node, next.item);
                }
            }
            out.spans.push(out.to.len() as u32);
            if t.node.is_source() {
                // Mirror of `on_source_update_into`, appending into the
                // shared flat target buffer.
                self.record(t.item, SOURCE, t.value);
                match self.protocol {
                    Protocol::Centralized => {
                        let list = &mut self.source_lists[t.item.index()];
                        let (hit, checks) = kernel::tag_scan(t.value, &list.c, &mut list.last);
                        out.source_checks += checks;
                        let tag = match hit {
                            None => None,
                            Some(j) => {
                                let tag = list.c[j];
                                let r = self.row_range(SOURCE, t.item);
                                out.source_checks +=
                                    kernel::tag_filter(tag, &self.child_edges[r], &mut out.to);
                                Some(Coherency::new(tag))
                            }
                        };
                        out.updates.push(Update { item: t.item, value: t.value, tag });
                    }
                    Protocol::Naive | Protocol::Distributed => {
                        let bias = match self.protocol {
                            Protocol::Distributed => self.eff_of(SOURCE, t.item).value(),
                            _ => 0.0,
                        };
                        let r = self.row_range(SOURCE, t.item);
                        out.source_checks += kernel::deviation_scan(
                            t.value,
                            bias,
                            &self.child_edges[r],
                            &mut out.to,
                        );
                        out.updates.push(Update { item: t.item, value: t.value, tag: None });
                    }
                    Protocol::FloodAll => {
                        let r = self.row_range(SOURCE, t.item);
                        out.source_checks += kernel::flood(&self.child_edges[r], &mut out.to);
                        out.updates.push(Update { item: t.item, value: t.value, tag: None });
                    }
                }
                // d3t-lint: allow(P001) -- this branch pushed into out.updates a few lines above
                let u = *out.updates.last().expect("source arm pushed its update");
                out.source_checks += self.adopted_into(SOURCE, u, &mut out.to);
            } else if t.idx & MIRROR_TOUCH_BIT != 0 {
                // A mirror delivery: replay only the state write, so
                // this replica's row and parent-edge copy of the
                // receiver match the owning shard's (what a later
                // decision at an owned ancestor reads). The owning
                // shard already made and routed the forwarding
                // decision, so nothing is decided here: the span pushed
                // above stays empty, and the adoption sweep is skipped.
                let row = t.item.index() * self.n_nodes + t.node.index();
                let meta = self.rows[row];
                self.record_at(row, meta.parent_edge, t.value);
                out.updates.push(t.update());
            } else {
                // Mirror of `on_repo_update_into` minus the liveness
                // branch (filtered at gather, see above).
                debug_assert!(
                    self.active[t.node.index()],
                    "dropped arrivals must not be staged as touches"
                );
                let row = t.item.index() * self.n_nodes + t.node.index();
                let meta = self.rows[row];
                self.record_at(row, meta.parent_edge, t.value);
                let r = meta.start as usize..(meta.start + meta.len) as usize;
                out.repo_checks += match self.protocol {
                    Protocol::Centralized => {
                        debug_assert!(!t.tag.is_nan(), "centralized updates always carry a tag");
                        kernel::tag_filter(t.tag, &self.child_edges[r], &mut out.to)
                    }
                    Protocol::Naive => {
                        kernel::deviation_scan(t.value, 0.0, &self.child_edges[r], &mut out.to)
                    }
                    Protocol::Distributed => {
                        kernel::deviation_scan(t.value, meta.eff, &self.child_edges[r], &mut out.to)
                    }
                    Protocol::FloodAll => kernel::flood(&self.child_edges[r], &mut out.to),
                };
                out.repo_checks += self.adopted_into(t.node, t.update(), &mut out.to);
                out.updates.push(t.update());
            }
        }
        out.spans.push(out.to.len() as u32);
    }

    /// Handles a raw source tick through the branchy **scalar oracle**,
    /// allocating a fresh [`Forwarding`] — the reference implementation
    /// the kernel path is property-tested against (and what the sealed
    /// `Engine::run` oracle loop in `d3t-sim` drives). Unlike the kernel
    /// it reads the receiver-indexed array, so the tests also pin the
    /// per-edge `child_last` mirror.
    pub fn on_source_update(&mut self, item: ItemId, value: f64) -> Forwarding {
        let mut fwd = match self.protocol {
            Protocol::Centralized => self.centralized_source(item, value),
            Protocol::Naive | Protocol::Distributed => {
                self.record(item, SOURCE, value);
                self.per_child_filter(SOURCE, Update { item, value, tag: None })
            }
            Protocol::FloodAll => {
                self.record(item, SOURCE, value);
                self.flood(SOURCE, Update { item, value, tag: None })
            }
        };
        fwd.checks += self.adopted_into(SOURCE, fwd.update, &mut fwd.to);
        fwd
    }

    /// Scalar-oracle counterpart of [`Disseminator::on_repo_update_into`]
    /// (see [`Disseminator::on_source_update`] for the role split).
    pub fn on_repo_update(&mut self, node: NodeIdx, update: Update) -> Forwarding {
        assert!(!node.is_source(), "use on_source_update for the source");
        if !self.active[node.index()] {
            // Fail-stop: a crashed repository neither records the value
            // nor forwards it. Its parent's record of "last sent" stays
            // stale, so the parent keeps retrying on later changes —
            // recovery is automatic once a delivery lands.
            return Forwarding { to: Vec::new(), update, checks: 0 };
        }
        self.record(update.item, node, update.value);
        let mut fwd = match self.protocol {
            Protocol::Centralized => centralized::forward(self, node, update),
            Protocol::Naive | Protocol::Distributed => self.per_child_filter(node, update),
            Protocol::FloodAll => self.flood(node, update),
        };
        fwd.checks += self.adopted_into(node, fwd.update, &mut fwd.to);
        fwd
    }

    /// The last value `node` received for `item` (its current copy).
    pub fn value_at(&self, node: NodeIdx, item: ItemId) -> f64 {
        self.last(item, node)
    }

    /// Hints the CPU to pull the row record an imminent
    /// [`Disseminator::on_repo_update_into`] for `(node, item)` will
    /// touch — lets an event loop that knows its next few deliveries
    /// overlap their cache misses. No-op off x86-64; never faults.
    #[inline]
    pub fn prefetch_row(&self, node: NodeIdx, item: ItemId) {
        crate::prefetch::read(&self.rows[item.index() * self.n_nodes + node.index()]);
    }

    fn per_child_filter(&mut self, node: NodeIdx, update: Update) -> Forwarding {
        // Monomorphized per protocol so the filter inlines into the loop.
        match self.protocol {
            Protocol::Naive => self.filter_with(node, update, naive::should_forward),
            Protocol::Distributed => self.filter_with(node, update, distributed::should_forward),
            _ => unreachable!("per_child_filter only serves naive/distributed"),
        }
    }

    #[inline]
    fn filter_with(
        &mut self,
        node: NodeIdx,
        update: Update,
        decide: impl Fn(f64, f64, Coherency, Coherency) -> bool,
    ) -> Forwarding {
        let c_self = self.eff_of(node, update.item);
        let base = update.item.index() * self.n_nodes;
        let mut to = Vec::new();
        let mut checks = 0u64;
        for e in self.row_range(node, update.item) {
            checks += 1;
            let child = NodeIdx(self.child_edges[e].node);
            // Receiver-indexed gather — deliberately NOT the kernel's
            // per-edge mirror, so the property tests cross-check the two
            // views of "last sent" against each other.
            let last = self.rows[base + child.index()].last;
            if decide(update.value, last, c_self, Coherency::new(self.child_edges[e].c)) {
                to.push(child);
            }
        }
        Forwarding { to, update, checks }
    }

    fn flood(&mut self, node: NodeIdx, update: Update) -> Forwarding {
        let to: Vec<NodeIdx> =
            self.row_range(node, update.item).map(|e| NodeIdx(self.child_edges[e].node)).collect();
        let checks = to.len() as u64;
        Forwarding { to, update, checks }
    }

    fn centralized_source(&mut self, item: ItemId, value: f64) -> Forwarding {
        self.record(item, SOURCE, value);
        let (tag, checks) = centralized::tag_update(self, item, value);
        match tag {
            None => {
                Forwarding { to: Vec::new(), update: Update { item, value, tag: None }, checks }
            }
            Some(tag) => {
                let update = Update { item, value, tag: Some(tag) };
                let mut fwd = centralized::forward(self, SOURCE, update);
                fwd.checks += checks;
                fwd
            }
        }
    }

    /// Runs a whole multi-item update sequence through the overlay with
    /// zero communication and computation delays, returning the final
    /// value each node holds plus aggregate message/check counts.
    ///
    /// This is the semantics under which the paper argues the distributed
    /// and centralized protocols achieve 100% fidelity; the property tests
    /// verify exactly that claim. The cascade is driven through the same
    /// allocation-free kernel path (`*_into`) the simulator runs — the
    /// scratch and work stack are reused across the whole sequence — so
    /// the zero-delay theorem tests exercise the production code, not a
    /// fork of the old per-event loop.
    pub fn run_zero_delay(
        &mut self,
        d3g: &D3g,
        updates: impl IntoIterator<Item = (ItemId, f64)>,
    ) -> ZeroDelayOutcome {
        let mut messages = 0u64;
        let mut checks = 0u64;
        let mut on_violation: Vec<(ItemId, f64)> = Vec::new();
        let mut scratch = ForwardScratch::new();
        let mut stack: Vec<(NodeIdx, Update)> = Vec::new();
        for (item, value) in updates {
            self.on_source_update_into(item, value, &mut scratch);
            checks += scratch.checks();
            stack.extend(scratch.to().iter().map(|&n| (n, scratch.update())));
            while let Some((node, update)) = stack.pop() {
                messages += 1;
                self.on_repo_update_into(node, update, &mut scratch);
                checks += scratch.checks();
                stack.extend(scratch.to().iter().map(|&n| (n, scratch.update())));
            }
            // After the cascade settles, record any coherency violation.
            for n in 1..d3g.n_nodes() {
                let node = NodeIdx(n as u32);
                if let Some(c) = d3g.effective(node, item) {
                    if c.violated_by(value, self.value_at(node, item)) {
                        on_violation.push((item, value));
                    }
                }
            }
        }
        ZeroDelayOutcome { messages, checks, violations: on_violation }
    }

    /// Marks a repository failed (`active = false`) or recovered
    /// (`active = true`) — the CSR row-disable mutation entry point.
    ///
    /// While inactive, [`Disseminator::on_repo_update`] is a no-op for the
    /// node: it records nothing and forwards to nobody, so its whole
    /// subtree starves (fail-stop semantics). Recovery needs no explicit
    /// resynchronization from the caller:
    ///
    /// * under the naive/distributed protocols senders are oblivious —
    ///   their per-dependent state is receiver-indexed and only advances
    ///   on actual deliveries, so the next violating source change is
    ///   retried and its delivery restores coherency;
    /// * under the centralized protocol the class-indexed `last_sent`
    ///   *does* advance while the node is down (the source cannot know a
    ///   class member missed the send), so recovery marks the node's
    ///   tolerance classes stale with its actual (pre-failure) copies —
    ///   the next source change then re-violates those classes and the
    ///   resend flows down to the recovered node.
    pub fn set_node_active(&mut self, node: NodeIdx, active: bool) {
        assert!(!node.is_source(), "the source cannot fail");
        let was_active = self.active[node.index()];
        self.active[node.index()] = active;
        if active && !was_active && self.protocol == Protocol::Centralized {
            self.resync_centralized(node);
        }
    }

    /// Restores the tolerance-class invariant for every item the
    /// recovering node holds (its stale copies drag the affected classes'
    /// `last_sent` back, so tagging re-violates on the next change; at
    /// worst this re-sends to class members that were already fresh).
    fn resync_centralized(&mut self, node: NodeIdx) {
        for i in 0..self.n_items {
            if self.parent[i * self.n_nodes + node.index()] != NO_PARENT {
                self.rebuild_source_list(ItemId(i as u32));
            }
        }
    }

    /// Whether the node currently participates in dissemination.
    pub fn is_active(&self, node: NodeIdx) -> bool {
        self.active[node.index()]
    }

    /// Renegotiates the *user* tolerance `node` holds `item` at — the CSR
    /// row-patch mutation entry point. Returns the node's new effective
    /// coherency.
    ///
    /// The effective coherency is re-derived as `user_c` tightened by
    /// every dependent the node keeps relaying for, then the sender-side
    /// CSR entry in the parent's row is patched in place (an O(1) write
    /// through `parent_edge`). Tightening propagates **up** the parent
    /// chain so Eq. (1) (`c_parent ≤ c_child` on every edge) keeps
    /// holding; loosening never relaxes ancestors (they stay
    /// conservatively tight, which costs messages but can never miss an
    /// update). Under the centralized protocol the source's
    /// unique-tolerance list is rebuilt: persisting tolerance classes
    /// keep their last-disseminated value, new classes start at the
    /// source's current value (renegotiation is prospective — it filters
    /// from "now", it does not replay history).
    ///
    /// # Panics
    /// Panics for the source or for a node that does not hold the item.
    pub fn renegotiate(&mut self, node: NodeIdx, item: ItemId, user_c: Coherency) -> Coherency {
        assert!(!node.is_source(), "the source's coherency is not negotiable");
        let base = item.index() * self.n_nodes;
        assert!(
            self.parent[base + node.index()] != NO_PARENT,
            "{node} does not hold {item:?}; only held items can be renegotiated"
        );
        let mut new_eff = user_c;
        for e in self.row_range(node, item) {
            new_eff = new_eff.tighten(Coherency::new(self.child_edges[e].c));
        }
        self.rows[base + node.index()].eff = new_eff.value();
        // Walk up: patch this node's entry in its parent's row, and keep
        // tightening ancestors while the child is now more stringent.
        let mut child = node;
        let c = new_eff;
        loop {
            let parent = self.parent[base + child.index()];
            if parent == NO_PARENT {
                break;
            }
            self.child_edges[self.rows[base + child.index()].parent_edge as usize].c = c.value();
            let pr = base + parent as usize;
            if NodeIdx(parent).is_source() || c.value() >= self.rows[pr].eff {
                break;
            }
            self.rows[pr].eff = c.value();
            child = NodeIdx(parent);
        }
        if self.protocol == Protocol::Centralized {
            self.rebuild_source_list(item);
        }
        new_eff
    }

    /// The dissemination parent `node` currently receives `item` from
    /// (`None` for the source and for nodes not holding the item).
    /// Reflects live re-parenting: an adopted child reports its foster
    /// parent until restored.
    #[inline]
    pub fn parent_of(&self, node: NodeIdx, item: ItemId) -> Option<NodeIdx> {
        match self.parent[item.index() * self.n_nodes + node.index()] {
            NO_PARENT => None,
            p => Some(NodeIdx(p)),
        }
    }

    /// Every `(item, child)` subscription `node` currently serves: its own
    /// CSR-row dependents that have not been adopted away, then children
    /// it has adopted, in registry order — the deterministic enumeration
    /// the repair layer walks when `node` crashes.
    pub fn dependents_of(&self, node: NodeIdx) -> Vec<(ItemId, NodeIdx)> {
        let mut deps = Vec::new();
        for i in 0..self.n_items {
            let item = ItemId(i as u32);
            let base = i * self.n_nodes;
            for e in self.row_range(node, item) {
                let child = self.child_edges[e].node;
                if self.parent[base + child as usize] == node.0 {
                    deps.push((item, NodeIdx(child)));
                }
            }
        }
        for a in &self.adoptions {
            if a.foster == node.0 {
                deps.push((ItemId(a.item), NodeIdx(a.child)));
            }
        }
        deps
    }

    /// Re-parents `child`'s subscription to `item` onto the surviving
    /// ancestor `foster` — the overlay self-healing mutation entry point.
    ///
    /// The child's CSR edge slot cannot move (rows are contiguous spans),
    /// so it stays physically inside the original parent's row and is
    /// *adopted*: the decision paths serve it from `foster`'s scans via
    /// the adoption registry, `parent` is rewritten so renegotiation and
    /// repair walk the live chain, and `parent_edge` is untouched so the
    /// per-edge `last_sent` mirror keeps working unchanged. Eq. (1) is
    /// preserved by tightening `foster`'s ancestor chain to the child's
    /// edge tolerance where needed (ancestors are never relaxed —
    /// conservatively tight, exactly like [`Disseminator::renegotiate`]).
    /// A child whose foster crashes too can be re-adopted: the original
    /// parent recorded by the first adoption is kept, so recovery of that
    /// original restores the pristine topology.
    ///
    /// # Panics
    /// Panics if `child` does not hold `item`, if `foster == child`, or
    /// if `child` has no parent to be re-parented from.
    pub fn reparent(&mut self, child: NodeIdx, item: ItemId, foster: NodeIdx) {
        assert!(child != foster, "a node cannot adopt itself");
        let base = item.index() * self.n_nodes;
        let old = self.parent[base + child.index()];
        assert!(old != NO_PARENT, "{child} does not hold {item:?}; nothing to re-parent");
        assert!(
            !self.active[old as usize],
            "re-parenting is only defined away from a crashed parent: the child's edge \
             slot stays physically in the old parent's row, so a live old parent would \
             still scan it and double-serve the child"
        );
        debug_assert!(
            foster.is_source() || self.parent[base + foster.index()] != NO_PARENT,
            "the foster parent must hold the item it adopts a dependent for"
        );
        if old == foster.0 {
            return;
        }
        match self.adoptions.iter_mut().find(|a| a.item == item.0 && a.child == child.0) {
            Some(a) => a.foster = foster.0,
            None => self.adoptions.push(Adoption {
                item: item.0,
                child: child.0,
                foster: foster.0,
                original: old,
            }),
        }
        self.parent[base + child.index()] = foster.0;
        // Eq. (1): the foster chain must serve the child at least as
        // stringently as the edge demands. Same upward walk as
        // `renegotiate`, starting at the foster.
        let edge = self.rows[base + child.index()].parent_edge as usize;
        let c = Coherency::new(self.child_edges[edge].c);
        let mut node = foster;
        let mut tightened = false;
        while !node.is_source() {
            let r = base + node.index();
            if c.value() >= self.rows[r].eff {
                break;
            }
            self.rows[r].eff = c.value();
            tightened = true;
            let pe = self.rows[r].parent_edge;
            if pe != NO_EDGE {
                self.child_edges[pe as usize].c = c.value();
            }
            match self.parent[r] {
                NO_PARENT => break,
                p => node = NodeIdx(p),
            }
        }
        if tightened && self.protocol == Protocol::Centralized {
            self.rebuild_source_list(item);
        }
    }

    /// Hands every child adopted away from `node` back to it (recovery
    /// re-attaches the original edges), returning how many subscriptions
    /// were restored. Effective coherencies tightened during adoption are
    /// left in place — conservatively tight, never missing an update —
    /// matching the renegotiation loosening rule.
    pub fn restore_children_of(&mut self, node: NodeIdx) -> usize {
        let mut restored = 0;
        let mut k = 0;
        while k < self.adoptions.len() {
            let a = self.adoptions[k];
            if a.original == node.0 {
                self.parent[a.item as usize * self.n_nodes + a.child as usize] = node.0;
                self.adoptions.swap_remove(k);
                restored += 1;
            } else {
                k += 1;
            }
        }
        restored
    }

    /// Number of currently re-parented subscriptions.
    pub fn adoption_count(&self) -> usize {
        self.adoptions.len()
    }

    /// Recomputes the centralized source's unique-tolerance list for
    /// `item` from the current effective coherencies. Each class's
    /// `last_sent` is set to its **stalest member's** actual copy — the
    /// invariant static operation maintains implicitly ("every member
    /// holds at least the class's last value"), re-established here after
    /// a mutation broke it. Anything else can strand a member: seeding a
    /// new class from the source's own value, or letting a renegotiated
    /// node join an existing class with a fresher `last_sent`, leaves the
    /// stale member violating while a slowly drifting source never
    /// re-tags the class. The reset can only make tagging fire *earlier*
    /// (a duplicate send to fresh members), never miss an update.
    fn rebuild_source_list(&mut self, item: ItemId) {
        let src_val = self.last(item, SOURCE);
        let base = item.index() * self.n_nodes;
        let mut cs: Vec<Coherency> = (1..self.n_nodes)
            .filter(|&n| self.parent[base + n] != NO_PARENT)
            .map(|n| Coherency::new(self.rows[base + n].eff))
            .collect();
        cs.sort();
        cs.dedup();
        let mut list = SourceList::default();
        for c in cs {
            let mut last = src_val;
            let mut worst_drift = -1.0f64;
            for n in 1..self.n_nodes {
                if self.parent[base + n] != NO_PARENT && self.rows[base + n].eff == c.value() {
                    let copy = self.rows[base + n].last;
                    let drift = (src_val - copy).abs();
                    if drift > worst_drift {
                        worst_drift = drift;
                        last = copy;
                    }
                }
            }
            list.c.push(c.value());
            list.last.push(last);
        }
        self.source_lists[item.index()] = list;
    }

    /// Number of items covered.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of overlay nodes (source + repositories).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub(crate) fn source_list_mut(&mut self, item: ItemId) -> &mut SourceList {
        &mut self.source_lists[item.index()]
    }

    /// The centralized source's `(class tolerance, last sent)` pairs for
    /// `item` (test helper).
    #[cfg(test)]
    pub(crate) fn source_list_pairs(&self, item: ItemId) -> Vec<(Coherency, f64)> {
        let list = &self.source_lists[item.index()];
        list.c.iter().zip(&list.last).map(|(&c, &l)| (Coherency::new(c), l)).collect()
    }

    /// Adopts `node`'s *value* state (its per-item `last` copies, both
    /// the row view and the per-edge mirror slot in its parent's row)
    /// from another replica of the same compiled disseminator.
    ///
    /// This is the sharded-snapshot merge primitive: each shard owns a
    /// node subset and is authoritative for those nodes' received
    /// values, while all *structural* state (CSR layout, effective
    /// coherencies, liveness, adoptions, source lists) is replicated
    /// identically on every shard because control events are replayed
    /// everywhere in the same order. Merging therefore only needs the
    /// owner's value columns copied over a clone of any one replica.
    ///
    /// # Panics
    /// Debug-asserts the two replicas share one compiled shape.
    pub fn copy_node_state_from(&mut self, src: &Disseminator, node: NodeIdx) {
        debug_assert_eq!(self.n_items, src.n_items);
        debug_assert_eq!(self.n_nodes, src.n_nodes);
        debug_assert_eq!(self.child_edges.len(), src.child_edges.len());
        for i in 0..self.n_items {
            let row = i * self.n_nodes + node.index();
            self.rows[row].last = src.rows[row].last;
            let pe = self.rows[row].parent_edge;
            if pe != NO_EDGE {
                self.child_edges[pe as usize].last = src.child_edges[pe as usize].last;
            }
        }
    }

    /// Approximate owned size of the protocol state in bytes (flat
    /// arrays + header) — snapshot telemetry only.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.len() * std::mem::size_of::<RowMeta>()
            + self.child_edges.len() * std::mem::size_of::<EdgeState>()
            + self.parent.len() * std::mem::size_of::<u32>()
            + self.active.len()
            + self.adoptions.len() * std::mem::size_of::<Adoption>()
            + self
                .source_lists
                .iter()
                .map(|l| (l.c.len() + l.last.len()) * std::mem::size_of::<f64>())
                .sum::<usize>()
    }

    /// Folds the disseminator's complete logical state — structure and
    /// values, every float by bit pattern — into `h`. Two disseminators
    /// digesting equal are byte-equal in every field a future decision
    /// can read, which is what the snapshot `state_digest` gates on.
    pub fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        h.write_u64(self.protocol as u64);
        h.write_usize(self.n_items);
        h.write_usize(self.n_nodes);
        for r in &self.rows {
            h.write_f64(r.last);
            h.write_f64(r.eff);
            h.write_u64(u64::from(r.start));
            h.write_u64(u64::from(r.len));
            h.write_u64(u64::from(r.parent_edge));
        }
        for e in &self.child_edges {
            h.write_f64(e.c);
            h.write_f64(e.last);
            h.write_u64(u64::from(e.node));
        }
        for &p in &self.parent {
            h.write_u64(u64::from(p));
        }
        for &a in &self.active {
            h.write_u8(u8::from(a));
        }
        h.write_usize(self.adoptions.len());
        for a in &self.adoptions {
            h.write_u64(u64::from(a.item));
            h.write_u64(u64::from(a.child));
            h.write_u64(u64::from(a.foster));
            h.write_u64(u64::from(a.original));
        }
        for list in &self.source_lists {
            h.write_usize(list.c.len());
            for (&c, &last) in list.c.iter().zip(&list.last) {
                h.write_f64(c);
                h.write_f64(last);
            }
        }
    }
}

/// Result of a zero-delay cascade run.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroDelayOutcome {
    /// Total update transmissions.
    pub messages: u64,
    /// Total filter evaluations.
    pub checks: u64,
    /// `(item, source value)` pairs for which some repository ended the
    /// cascade outside its tolerance — must be empty for the distributed
    /// and centralized protocols.
    pub violations: Vec<(ItemId, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn c(v: f64) -> Coherency {
        Coherency::new(v)
    }

    /// The exact Figure-4 scenario: S → P (c=0.3) → Q (c=0.5), values
    /// 1.0, 1.2, 1.4, 1.5, 1.7, 2.0.
    fn figure4_graph() -> (D3g, NodeIdx, NodeIdx) {
        let w = Workload::from_needs(vec![vec![Some(c(0.3))], vec![Some(c(0.5))]]);
        let mut g = D3g::new(w.n_repos(), 1);
        let (p, q) = (NodeIdx::repo(0), NodeIdx::repo(1));
        g.add_edge(SOURCE, p, ItemId(0), c(0.3));
        g.add_edge(p, q, ItemId(0), c(0.5));
        (g, p, q)
    }

    #[test]
    fn figure4_naive_misses_an_update() {
        let (g, _p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Naive, &g, &[1.0]);
        let out = d.run_zero_delay(&g, [1.2, 1.4, 1.5, 1.7, 2.0].map(|v| (ItemId(0), v)));
        // Per the paper: Q should have been within 0.5 of 1.5, but the 1.4
        // update never reached it, so when the source hits 1.7 Q still
        // holds 1.0 — a violation.
        assert_eq!(
            out.violations,
            vec![(ItemId(0), 1.7)],
            "the 1.7 source value must strand Q at 1.0, exactly as Figure 4 shows"
        );
        // The later 2.0 update does reach Q — the violation was transient,
        // which is why fidelity (a time fraction) is the right metric.
        assert_eq!(d.value_at(q, ItemId(0)), 2.0);
    }

    #[test]
    fn figure4_distributed_pushes_the_rescue_update() {
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        // 1.2: within 0.3 of 1.0 → P doesn't even get it.
        let f = d.on_source_update(ItemId(0), 1.2);
        assert!(f.to.is_empty());
        // 1.4: |1.4-1.0| > 0.3 → P gets it; P must forward to Q because
        // |1.4 - 1.0| = 0.4 > c_q - c_p = 0.2 (Eq. 7), even though Eq. 3
        // alone (0.4 > 0.5) would not fire.
        let f = d.on_source_update(ItemId(0), 1.4);
        assert_eq!(f.to, vec![p]);
        let f = d.on_repo_update(p, f.update);
        assert_eq!(f.to, vec![q], "Eq.(7) must push 1.4 to Q");
        let f = d.on_repo_update(q, f.update);
        assert!(f.to.is_empty());
        assert_eq!(d.value_at(q, ItemId(0)), 1.4);
    }

    #[test]
    fn figure4_distributed_full_run_has_no_violations() {
        let (g, _, _) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        let out = d.run_zero_delay(&g, [1.2, 1.4, 1.5, 1.7, 2.0].map(|v| (ItemId(0), v)));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn figure4_centralized_full_run_has_no_violations() {
        let (g, _, _) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Centralized, &g, &[1.0]);
        let out = d.run_zero_delay(&g, [1.2, 1.4, 1.5, 1.7, 2.0].map(|v| (ItemId(0), v)));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn flood_forwards_everything() {
        let (g, p, _q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::FloodAll, &g, &[1.0]);
        let f = d.on_source_update(ItemId(0), 1.01);
        assert_eq!(f.to, vec![p], "flood ignores tolerances");
    }

    #[test]
    fn failed_node_records_and_forwards_nothing() {
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        d.set_node_active(p, false);
        assert!(!d.is_active(p));
        let f = d.on_source_update(ItemId(0), 2.0);
        assert_eq!(f.to, vec![p], "senders are oblivious to the failure");
        let f = d.on_repo_update(p, f.update);
        assert!(f.to.is_empty(), "a failed node must not forward");
        assert_eq!(f.checks, 0);
        assert_eq!(d.value_at(p, ItemId(0)), 1.0, "a failed node must not record");
        // Recovery: the next violating change flows through again because
        // the sender-side record never advanced.
        d.set_node_active(p, true);
        let f = d.on_source_update(ItemId(0), 3.0);
        assert_eq!(f.to, vec![p]);
        let f = d.on_repo_update(p, f.update);
        assert_eq!(f.to, vec![q]);
        assert_eq!(d.value_at(p, ItemId(0)), 3.0);
    }

    #[test]
    fn renegotiate_tightening_propagates_up_the_chain() {
        // S → P (0.3) → Q (0.5); tightening Q to 0.1 must tighten P too
        // (Eq. 1: the parent serves the child at least as stringently).
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        let eff = d.renegotiate(q, ItemId(0), c(0.1));
        assert_eq!(eff, c(0.1));
        assert_eq!(d.eff_of(q, ItemId(0)), c(0.1));
        assert_eq!(d.eff_of(p, ItemId(0)), c(0.1), "ancestor tightened");
        let row = d.children_of_compiled(p, ItemId(0));
        assert_eq!(row[0], (q, c(0.1)), "CSR entry patched");
        let row = d.children_of_compiled(SOURCE, ItemId(0));
        assert_eq!(row[0], (p, c(0.1)), "source row patched");
        // A 0.2 drift now violates Q's tightened requirement end to end.
        let f = d.on_source_update(ItemId(0), 1.2);
        assert_eq!(f.to, vec![p]);
        let f = d.on_repo_update(p, f.update);
        assert_eq!(f.to, vec![q]);
    }

    #[test]
    fn renegotiate_loosening_never_relaxes_ancestors_or_relayed_children() {
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        // Loosen Q: P keeps its own 0.3 (never relaxed), Q's entry patched.
        let eff = d.renegotiate(q, ItemId(0), c(0.9));
        assert_eq!(eff, c(0.9));
        assert_eq!(d.eff_of(p, ItemId(0)), c(0.3));
        assert_eq!(d.children_of_compiled(p, ItemId(0))[0].1, c(0.9));
        // Loosen P above its child: the relay obligation keeps it at 0.9.
        let eff = d.renegotiate(p, ItemId(0), c(2.0));
        assert_eq!(eff, c(0.9), "eff = tighten(user 2.0, child 0.9)");
        assert_eq!(d.children_of_compiled(SOURCE, ItemId(0))[0].1, c(0.9));
    }

    /// Star: S → A (0.1), S → B (0.4), centralized.
    fn centralized_star() -> (D3g, NodeIdx, NodeIdx) {
        let mut g = D3g::new(2, 1);
        let (a, b) = (NodeIdx::repo(0), NodeIdx::repo(1));
        g.add_edge(SOURCE, a, ItemId(0), c(0.1));
        g.add_edge(SOURCE, b, ItemId(0), c(0.4));
        (g, a, b)
    }

    #[test]
    fn renegotiate_rebuilds_centralized_source_list_from_stalest_member() {
        let (g, a, b) = centralized_star();
        let mut d = Disseminator::new(Protocol::Centralized, &g, &[1.0]);
        let f = d.on_source_update(ItemId(0), 1.2); // tag 0.1: serves A
        let _ = d.on_repo_update(a, f.update); // ...and A holds it
        d.renegotiate(b, ItemId(0), c(0.2));
        let list = d.source_list_pairs(ItemId(0));
        assert_eq!(list.len(), 2);
        assert_eq!(list[0], (c(0.1), 1.2), "A's class: A holds 1.2");
        // B never received 1.2 (it was only tagged 0.1), so its new class
        // must be seeded with B's actual copy, not the source's value.
        assert_eq!(list[1], (c(0.2), 1.0), "new class seeded from stalest member");
    }

    #[test]
    fn centralized_tightening_repairs_on_the_next_change() {
        // Source moves 1.0 → 1.3: tagged 0.1, so A refreshes but B (0.4)
        // does not. B then tightens to 0.1, *joining A's class*. If the
        // merged class kept A's fresh last (1.3), a slow source (next
        // value 1.35) would never re-violate it and B would hold 1.0
        // forever; the stalest-member rule drags the class back to 1.0.
        let (g, a, b) = centralized_star();
        let mut d = Disseminator::new(Protocol::Centralized, &g, &[1.0]);
        let f = d.on_source_update(ItemId(0), 1.3);
        assert_eq!(f.to, vec![a], "tag 0.1 serves only A");
        let _ = d.on_repo_update(a, f.update);
        d.renegotiate(b, ItemId(0), c(0.1));
        assert_eq!(d.source_list_pairs(ItemId(0)), vec![(c(0.1), 1.0)]);
        let f = d.on_source_update(ItemId(0), 1.35);
        assert!(f.to.contains(&b), "stalest-member class must re-tag B on the next change");
        let f = d.on_repo_update(b, f.update);
        assert!(f.to.is_empty());
        assert_eq!(d.value_at(b, ItemId(0)), 1.35);
    }

    #[test]
    fn centralized_recovery_resyncs_the_nodes_classes() {
        // B (c=0.4) fails; the source jumps to 5.0 — tag_update advances
        // B's class to 5.0 even though the send was lost. Without the
        // recovery resync, later values near 5.0 never re-violate the
        // class and B stays at 1.0 to the end of time.
        let (g, _a, b) = centralized_star();
        let mut d = Disseminator::new(Protocol::Centralized, &g, &[1.0]);
        d.set_node_active(b, false);
        let f = d.on_source_update(ItemId(0), 5.0);
        assert!(f.to.contains(&b), "the source is oblivious and still sends");
        let _ = d.on_repo_update(b, f.update); // dropped: B is down
        assert_eq!(d.value_at(b, ItemId(0)), 1.0);
        d.set_node_active(b, true);
        let f = d.on_source_update(ItemId(0), 5.05);
        assert!(f.to.contains(&b), "recovery must mark B's class stale");
        let _ = d.on_repo_update(b, f.update);
        assert_eq!(d.value_at(b, ItemId(0)), 5.05);
    }

    #[test]
    fn value_at_tracks_received_updates() {
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        assert_eq!(d.value_at(q, ItemId(0)), 1.0);
        let f = d.on_source_update(ItemId(0), 2.0);
        assert_eq!(f.to, vec![p]);
        let f = d.on_repo_update(p, f.update);
        let _ = d.on_repo_update(q, f.update);
        assert_eq!(d.value_at(p, ItemId(0)), 2.0);
        assert_eq!(d.value_at(q, ItemId(0)), 2.0);
    }

    /// The kernel path must make the same decisions, forward the same
    /// update, and count the same checks as the scalar oracle on the
    /// Figure-4 walkthrough (the broad randomized version lives in
    /// `tests/kernel_properties.rs`).
    #[test]
    fn kernel_path_mirrors_scalar_oracle_on_figure4() {
        for protocol in
            [Protocol::Naive, Protocol::Distributed, Protocol::Centralized, Protocol::FloodAll]
        {
            let (g, _p, _q) = figure4_graph();
            let mut oracle = Disseminator::new(protocol, &g, &[1.0]);
            let mut kern = Disseminator::new(protocol, &g, &[1.0]);
            let mut scratch = ForwardScratch::new();
            for v in [1.2, 1.4, 1.5, 1.7, 2.0] {
                let f = oracle.on_source_update(ItemId(0), v);
                kern.on_source_update_into(ItemId(0), v, &mut scratch);
                assert_eq!(scratch.to(), &f.to[..], "{protocol:?} source targets");
                assert_eq!(scratch.update(), f.update, "{protocol:?} source update");
                assert_eq!(scratch.checks(), f.checks, "{protocol:?} source checks");
                let mut pending: Vec<(NodeIdx, Update)> =
                    f.to.iter().map(|&n| (n, f.update)).collect();
                while let Some((node, update)) = pending.pop() {
                    let f = oracle.on_repo_update(node, update);
                    kern.on_repo_update_into(node, update, &mut scratch);
                    assert_eq!(scratch.to(), &f.to[..], "{protocol:?} repo targets");
                    assert_eq!(scratch.checks(), f.checks, "{protocol:?} repo checks");
                    pending.extend(f.to.iter().map(|&n| (n, f.update)));
                }
            }
        }
    }

    #[test]
    fn reparent_serves_child_from_surviving_ancestor_and_restores() {
        // S → P (0.3) → Q (0.5): P crashes, Q is adopted by S.
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        d.set_node_active(p, false);
        d.reparent(q, ItemId(0), SOURCE);
        assert_eq!(d.adoption_count(), 1);
        assert_eq!(d.parent_of(q, ItemId(0)), Some(SOURCE));
        // The source now checks its own row (P) plus the adopted edge (Q).
        let f = d.on_source_update(ItemId(0), 2.0);
        assert_eq!(f.checks, 2, "one check per candidate incl. the adopted edge");
        assert!(f.to.contains(&q), "|2.0 − 1.0| > 0.5 must reach the adopted child");
        let f_q = d.on_repo_update(q, f.update);
        assert!(f_q.to.is_empty());
        assert_eq!(d.value_at(q, ItemId(0)), 2.0, "adopted delivery records normally");
        // The crashed parent's own enumeration no longer claims Q...
        assert!(d.dependents_of(p).is_empty());
        // ...the foster's does.
        assert_eq!(d.dependents_of(SOURCE), vec![(ItemId(0), p), (ItemId(0), q)]);
        // Recovery re-attaches the original edge exactly.
        assert_eq!(d.restore_children_of(p), 1);
        d.set_node_active(p, true);
        assert_eq!(d.adoption_count(), 0);
        assert_eq!(d.parent_of(q, ItemId(0)), Some(p));
        let f = d.on_source_update(ItemId(0), 4.0);
        assert_eq!(f.to, vec![p], "post-restore the source serves only its own row");
        let f = d.on_repo_update(p, f.update);
        assert_eq!(f.to, vec![q], "P relays to Q again, mirror state intact");
    }

    #[test]
    fn reparent_kernel_path_matches_scalar_oracle() {
        let (g, p, q) = figure4_graph();
        let mut oracle = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        let mut kern = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        for d in [&mut oracle, &mut kern] {
            d.set_node_active(p, false);
            d.reparent(q, ItemId(0), SOURCE);
        }
        let mut scratch = ForwardScratch::new();
        for v in [1.2, 1.4, 1.7, 2.6, 2.61] {
            let f = oracle.on_source_update(ItemId(0), v);
            kern.on_source_update_into(ItemId(0), v, &mut scratch);
            assert_eq!(scratch.to(), &f.to[..], "adopted targets must match at {v}");
            assert_eq!(scratch.checks(), f.checks, "adopted checks must match at {v}");
            for &n in &f.to {
                if oracle.is_active(n) || n == q {
                    let fr = oracle.on_repo_update(n, f.update);
                    kern.on_repo_update_into(n, f.update, &mut scratch);
                    assert_eq!(scratch.to(), &fr.to[..]);
                }
            }
        }
    }

    #[test]
    fn reparent_tightens_a_looser_foster_chain() {
        // S → A (0.4), S → P (0.3), P → C (0.35), centralized. P crashes
        // and C is adopted by the *sibling* A: Eq. (1) forces A's chain
        // down to 0.35, patches A's source edge, and rebuilds the
        // tolerance classes.
        let mut g = D3g::new(3, 1);
        let (a, p, ch) = (NodeIdx::repo(0), NodeIdx::repo(1), NodeIdx::repo(2));
        g.add_edge(SOURCE, a, ItemId(0), c(0.4));
        g.add_edge(SOURCE, p, ItemId(0), c(0.3));
        g.add_edge(p, ch, ItemId(0), c(0.35));
        let mut d = Disseminator::new(Protocol::Centralized, &g, &[1.0]);
        d.set_node_active(p, false);
        d.reparent(ch, ItemId(0), a);
        assert_eq!(d.eff_of(a, ItemId(0)), c(0.35), "foster tightened to the adopted edge");
        assert_eq!(d.children_of_compiled(SOURCE, ItemId(0))[0].1, c(0.35), "source row patched");
        let f = d.on_source_update(ItemId(0), 1.38);
        assert_eq!(f.update.tag, Some(c(0.35)), "0.38 drift violates the 0.35 class");
        assert_eq!(f.to, vec![a, p], "the dead sibling's slot is still addressed (oblivious)");
        let f = d.on_repo_update(a, f.update);
        assert_eq!(f.to, vec![ch], "A relays to its adopted child");
        let _ = d.on_repo_update(ch, f.update);
        assert_eq!(d.value_at(ch, ItemId(0)), 1.38);
    }

    /// The Figure-11 comparability invariant: every forwarding decision
    /// evaluates the filter **exactly once per candidate** — per CSR-row
    /// dependent for the tree filters (whether or not the update is
    /// forwarded, flood included) and per unique tolerance class for the
    /// centralized source's tag scan (no early exit) — on both the
    /// scalar-oracle and kernel paths.
    #[test]
    fn checks_count_one_evaluation_per_candidate() {
        // S fans out to 3 repos (tolerances 0.1 / 0.3 / 0.3); repo 0
        // relays to a 4th at 0.5 — so the centralized list holds three
        // unique classes {0.1, 0.3, 0.5} over the four holders.
        let mut g = D3g::new(4, 1);
        let (r0, r1, r2, r3) =
            (NodeIdx::repo(0), NodeIdx::repo(1), NodeIdx::repo(2), NodeIdx::repo(3));
        g.add_edge(SOURCE, r0, ItemId(0), c(0.1));
        g.add_edge(SOURCE, r1, ItemId(0), c(0.3));
        g.add_edge(SOURCE, r2, ItemId(0), c(0.3));
        g.add_edge(r0, r3, ItemId(0), c(0.5));
        let mut scratch = ForwardScratch::new();
        for (protocol, source_checks_quiet, source_checks_loud) in [
            // 3 source-row candidates, scanned whether or not they fire.
            (Protocol::Naive, 3, 3),
            (Protocol::Distributed, 3, 3),
            (Protocol::FloodAll, 3, 3),
            // 3 tolerance classes scanned always; +3 row candidates only
            // when a class violates and the update actually enters the
            // tree.
            (Protocol::Centralized, 3, 3 + 3),
        ] {
            let mut d = Disseminator::new(protocol, &g, &[1.0]);
            // Quiet change (nothing violates): full candidate scan still
            // counted.
            let f = d.on_source_update(ItemId(0), 1.01);
            assert_eq!(f.checks, source_checks_quiet, "{protocol:?} quiet");
            if protocol != Protocol::FloodAll {
                assert!(f.to.is_empty(), "{protocol:?}: 0.01 drift addresses nobody");
            }
            // Loud change (everything violates): same per-candidate count.
            let f = d.on_source_update(ItemId(0), 9.0);
            assert_eq!(f.checks, source_checks_loud, "{protocol:?} loud");
            // Repo decisions: one check per CSR-row dependent (r0 has one,
            // r1 has none), regardless of the outcome.
            let f0 = d.on_repo_update(r0, f.update);
            assert_eq!(f0.checks, 1, "{protocol:?} relay row");
            let f1 = d.on_repo_update(r1, f.update);
            assert_eq!(f1.checks, 0, "{protocol:?} leaf row");
            // The kernel path counts identically.
            let mut k = Disseminator::new(protocol, &g, &[1.0]);
            k.on_source_update_into(ItemId(0), 1.01, &mut scratch);
            assert_eq!(scratch.checks(), source_checks_quiet, "{protocol:?} kernel quiet");
            k.on_source_update_into(ItemId(0), 9.0, &mut scratch);
            assert_eq!(scratch.checks(), source_checks_loud, "{protocol:?} kernel loud");
            let update = scratch.update();
            k.on_repo_update_into(r0, update, &mut scratch);
            assert_eq!(scratch.checks(), 1, "{protocol:?} kernel relay row");
            k.on_repo_update_into(r1, update, &mut scratch);
            assert_eq!(scratch.checks(), 0, "{protocol:?} kernel leaf row");
        }
    }
}
