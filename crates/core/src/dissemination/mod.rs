//! Update-dissemination protocols — §5 of the paper.
//!
//! Given a constructed d3g, a node receiving an update must decide which
//! dependents to push it to. Three policies are implemented:
//!
//! * [`naive`] — Eq. (3) only: push to `q` iff `|v − last_q| > c_q`.
//!   Necessary but **not sufficient**; Figure 4 of the paper (reproduced in
//!   this module's tests) shows it silently strands dependents.
//! * [`distributed`] — Eq. (3) ∨ Eq. (7): push iff
//!   `|v − last_q| > c_q − c_p`. Guarantees no missed updates with only
//!   per-edge state.
//! * [`centralized`] — the source tags each update with the largest
//!   violated coherency tolerance in the system; repositories forward by
//!   comparing their dependents' tolerances against the tag.
//!
//! All protocol state lives in [`Disseminator`], which is driven either by
//! the discrete-event simulator (`d3t-sim`) or directly (zero-delay
//! semantics) via [`Disseminator::run_zero_delay`] — the configuration
//! under which the paper proves both non-naive protocols achieve 100%
//! fidelity.

pub mod centralized;
pub mod distributed;
pub mod naive;

use serde::{Deserialize, Serialize};

use crate::coherency::Coherency;
use crate::graph::D3g;
use crate::item::ItemId;
use crate::overlay::{NodeIdx, SOURCE};

/// Which dissemination policy a [`Disseminator`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Eq. (3) only — the strawman with the missed-updates problem.
    Naive,
    /// Eq. (3) ∨ Eq. (7) — the repository-based approach (§5.1).
    Distributed,
    /// Source-tagged dissemination — the source-based approach (§5.2).
    Centralized,
    /// Push every source update to every interested repository, ignoring
    /// tolerances. Emulates the unfiltered system of Figure 8.
    FloodAll,
}

/// One update traveling through the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// The item that changed.
    pub item: ItemId,
    /// Its new value.
    pub value: f64,
    /// Tag attached by the centralized source: the largest violated
    /// tolerance. `None` for the other protocols.
    pub tag: Option<Coherency>,
}

/// The forwarding decision a node makes for one incoming update.
#[derive(Debug, Clone, PartialEq)]
pub struct Forwarding {
    /// Dependents the update must be pushed to.
    pub to: Vec<NodeIdx>,
    /// The update as it should be forwarded (tag preserved).
    pub update: Update,
    /// Number of filter evaluations performed making this decision —
    /// the "checks" metric of Figure 11.
    pub checks: u64,
}

/// All per-node protocol state for one d3g.
///
/// `last_sent[(parent-side) item][child]` bookkeeping lives with the
/// *sender*, exactly as §5.1 describes: a repository `p` remembers, per
/// dependent `q` and item, the last value it pushed to `q`.
#[derive(Debug, Clone)]
pub struct Disseminator {
    protocol: Protocol,
    /// `last_sent[item][node]`: last value this node *received* (for the
    /// source: the last raw value). Because each node has exactly one
    /// parent per item, the sender-side record of "last sent to q" equals
    /// the receiver-side record of "last received by q"; storing it once,
    /// receiver-indexed, keeps the state linear in nodes.
    last_received: Vec<Vec<f64>>,
    /// Centralized-only: per item, the sorted list of unique tolerances
    /// present in the d3g with the last value disseminated for each.
    source_lists: Vec<Vec<(Coherency, f64)>>,
    n_items: usize,
}

impl Disseminator {
    /// Initializes protocol state for `d3g`, with every node assumed
    /// coherent at `initial_values[item]` (the first tick of each trace).
    pub fn new(protocol: Protocol, d3g: &D3g, initial_values: &[f64]) -> Self {
        assert_eq!(initial_values.len(), d3g.n_items(), "one initial value per item");
        let n_items = d3g.n_items();
        let last_received: Vec<Vec<f64>> =
            (0..n_items).map(|i| vec![initial_values[i]; d3g.n_nodes()]).collect();
        let source_lists = if protocol == Protocol::Centralized {
            (0..n_items)
                .map(|i| {
                    let item = ItemId(i as u32);
                    let mut cs: Vec<Coherency> = (1..d3g.n_nodes())
                        .filter_map(|n| d3g.effective(NodeIdx(n as u32), item))
                        .collect();
                    cs.sort();
                    cs.dedup();
                    cs.into_iter().map(|c| (c, initial_values[i])).collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        Self { protocol, last_received, source_lists, n_items }
    }

    /// The protocol in force.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Handles a raw source tick: decides which of the source's dependents
    /// receive the update.
    pub fn on_source_update(&mut self, d3g: &D3g, item: ItemId, value: f64) -> Forwarding {
        match self.protocol {
            Protocol::Centralized => self.centralized_source(d3g, item, value),
            Protocol::Naive | Protocol::Distributed => {
                self.last_received[item.index()][SOURCE.index()] = value;
                self.per_child_filter(d3g, SOURCE, Update { item, value, tag: None })
            }
            Protocol::FloodAll => {
                self.last_received[item.index()][SOURCE.index()] = value;
                self.flood(d3g, SOURCE, Update { item, value, tag: None })
            }
        }
    }

    /// Handles an update arriving at repository `node`: records the new
    /// local value and decides which dependents to forward to.
    pub fn on_repo_update(&mut self, d3g: &D3g, node: NodeIdx, update: Update) -> Forwarding {
        assert!(!node.is_source(), "use on_source_update for the source");
        self.last_received[update.item.index()][node.index()] = update.value;
        match self.protocol {
            Protocol::Centralized => centralized::forward(self, d3g, node, update),
            Protocol::Naive | Protocol::Distributed => self.per_child_filter(d3g, node, update),
            Protocol::FloodAll => self.flood(d3g, node, update),
        }
    }

    /// The last value `node` received for `item` (its current copy).
    pub fn value_at(&self, node: NodeIdx, item: ItemId) -> f64 {
        self.last_received[item.index()][node.index()]
    }

    fn per_child_filter(&mut self, d3g: &D3g, node: NodeIdx, update: Update) -> Forwarding {
        let decide = match self.protocol {
            Protocol::Naive => naive::should_forward,
            Protocol::Distributed => distributed::should_forward,
            _ => unreachable!("per_child_filter only serves naive/distributed"),
        };
        let c_self = if node.is_source() {
            Coherency::EXACT
        } else {
            d3g.effective(node, update.item).expect("node received an item it does not hold")
        };
        let mut to = Vec::new();
        let mut checks = 0u64;
        for &child in d3g.children_of(node, update.item) {
            checks += 1;
            let c_child = d3g
                .effective(child, update.item)
                .expect("child subscribed to an item it does not hold");
            let last = self.last_received[update.item.index()][child.index()];
            if decide(update.value, last, c_self, c_child) {
                to.push(child);
            }
        }
        Forwarding { to, update, checks }
    }

    fn flood(&mut self, d3g: &D3g, node: NodeIdx, update: Update) -> Forwarding {
        let to: Vec<NodeIdx> = d3g.children_of(node, update.item).to_vec();
        let checks = to.len() as u64;
        Forwarding { to, update, checks }
    }

    fn centralized_source(&mut self, d3g: &D3g, item: ItemId, value: f64) -> Forwarding {
        self.last_received[item.index()][SOURCE.index()] = value;
        let (tag, checks) = centralized::tag_update(self, item, value);
        match tag {
            None => {
                Forwarding { to: Vec::new(), update: Update { item, value, tag: None }, checks }
            }
            Some(tag) => {
                let update = Update { item, value, tag: Some(tag) };
                let mut fwd = centralized::forward(self, d3g, SOURCE, update);
                fwd.checks += checks;
                fwd
            }
        }
    }

    /// Runs a whole multi-item update sequence through the overlay with
    /// zero communication and computation delays, returning the final
    /// value each node holds plus aggregate message/check counts.
    ///
    /// This is the semantics under which the paper argues the distributed
    /// and centralized protocols achieve 100% fidelity; the property tests
    /// verify exactly that claim.
    pub fn run_zero_delay(
        &mut self,
        d3g: &D3g,
        updates: impl IntoIterator<Item = (ItemId, f64)>,
    ) -> ZeroDelayOutcome {
        let mut messages = 0u64;
        let mut checks = 0u64;
        let mut on_violation: Vec<(ItemId, f64)> = Vec::new();
        for (item, value) in updates {
            let fwd = self.on_source_update(d3g, item, value);
            checks += fwd.checks;
            let mut queue: Vec<(NodeIdx, Update)> =
                fwd.to.iter().map(|&n| (n, fwd.update)).collect();
            while let Some((node, update)) = queue.pop() {
                messages += 1;
                let f = self.on_repo_update(d3g, node, update);
                checks += f.checks;
                queue.extend(f.to.iter().map(|&n| (n, f.update)));
            }
            // After the cascade settles, record any coherency violation.
            for n in 1..d3g.n_nodes() {
                let node = NodeIdx(n as u32);
                if let Some(c) = d3g.effective(node, item) {
                    if c.violated_by(value, self.value_at(node, item)) {
                        on_violation.push((item, value));
                    }
                }
            }
        }
        ZeroDelayOutcome { messages, checks, violations: on_violation }
    }

    /// Number of items covered.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    pub(crate) fn source_list_mut(&mut self, item: ItemId) -> &mut Vec<(Coherency, f64)> {
        &mut self.source_lists[item.index()]
    }
}

/// Result of a zero-delay cascade run.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroDelayOutcome {
    /// Total update transmissions.
    pub messages: u64,
    /// Total filter evaluations.
    pub checks: u64,
    /// `(item, source value)` pairs for which some repository ended the
    /// cascade outside its tolerance — must be empty for the distributed
    /// and centralized protocols.
    pub violations: Vec<(ItemId, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn c(v: f64) -> Coherency {
        Coherency::new(v)
    }

    /// The exact Figure-4 scenario: S → P (c=0.3) → Q (c=0.5), values
    /// 1.0, 1.2, 1.4, 1.5, 1.7, 2.0.
    fn figure4_graph() -> (D3g, NodeIdx, NodeIdx) {
        let w = Workload::from_needs(vec![vec![Some(c(0.3))], vec![Some(c(0.5))]]);
        let mut g = D3g::new(w.n_repos(), 1);
        let (p, q) = (NodeIdx::repo(0), NodeIdx::repo(1));
        g.add_edge(SOURCE, p, ItemId(0), c(0.3));
        g.add_edge(p, q, ItemId(0), c(0.5));
        (g, p, q)
    }

    #[test]
    fn figure4_naive_misses_an_update() {
        let (g, _p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Naive, &g, &[1.0]);
        let out = d.run_zero_delay(&g, [1.2, 1.4, 1.5, 1.7, 2.0].map(|v| (ItemId(0), v)));
        // Per the paper: Q should have been within 0.5 of 1.5, but the 1.4
        // update never reached it, so when the source hits 1.7 Q still
        // holds 1.0 — a violation.
        assert_eq!(
            out.violations,
            vec![(ItemId(0), 1.7)],
            "the 1.7 source value must strand Q at 1.0, exactly as Figure 4 shows"
        );
        // The later 2.0 update does reach Q — the violation was transient,
        // which is why fidelity (a time fraction) is the right metric.
        assert_eq!(d.value_at(q, ItemId(0)), 2.0);
    }

    #[test]
    fn figure4_distributed_pushes_the_rescue_update() {
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        // 1.2: within 0.3 of 1.0 → P doesn't even get it.
        let f = d.on_source_update(&g, ItemId(0), 1.2);
        assert!(f.to.is_empty());
        // 1.4: |1.4-1.0| > 0.3 → P gets it; P must forward to Q because
        // |1.4 - 1.0| = 0.4 > c_q - c_p = 0.2 (Eq. 7), even though Eq. 3
        // alone (0.4 > 0.5) would not fire.
        let f = d.on_source_update(&g, ItemId(0), 1.4);
        assert_eq!(f.to, vec![p]);
        let f = d.on_repo_update(&g, p, f.update);
        assert_eq!(f.to, vec![q], "Eq.(7) must push 1.4 to Q");
        let f = d.on_repo_update(&g, q, f.update);
        assert!(f.to.is_empty());
        assert_eq!(d.value_at(q, ItemId(0)), 1.4);
    }

    #[test]
    fn figure4_distributed_full_run_has_no_violations() {
        let (g, _, _) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        let out = d.run_zero_delay(&g, [1.2, 1.4, 1.5, 1.7, 2.0].map(|v| (ItemId(0), v)));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn figure4_centralized_full_run_has_no_violations() {
        let (g, _, _) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Centralized, &g, &[1.0]);
        let out = d.run_zero_delay(&g, [1.2, 1.4, 1.5, 1.7, 2.0].map(|v| (ItemId(0), v)));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn flood_forwards_everything() {
        let (g, p, _q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::FloodAll, &g, &[1.0]);
        let f = d.on_source_update(&g, ItemId(0), 1.01);
        assert_eq!(f.to, vec![p], "flood ignores tolerances");
    }

    #[test]
    fn value_at_tracks_received_updates() {
        let (g, p, q) = figure4_graph();
        let mut d = Disseminator::new(Protocol::Distributed, &g, &[1.0]);
        assert_eq!(d.value_at(q, ItemId(0)), 1.0);
        let f = d.on_source_update(&g, ItemId(0), 2.0);
        assert_eq!(f.to, vec![p]);
        let f = d.on_repo_update(&g, p, f.update);
        let _ = d.on_repo_update(&g, q, f.update);
        assert_eq!(d.value_at(p, ItemId(0)), 2.0);
        assert_eq!(d.value_at(q, ItemId(0)), 2.0);
    }
}
