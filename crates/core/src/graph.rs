//! The dynamic data dissemination graph (`d3g`) and per-item trees (`d3t`).
//!
//! §2 of the paper: repositories storing a data item are logically
//! connected into a *dynamic data dissemination tree* rooted at the source;
//! the union of the per-item trees over all items is the dissemination
//! graph built during repository insertion. This module owns that
//! structure and its invariants:
//!
//! * per item, every holding node other than the source has exactly one
//!   parent, and following parents always reaches the source (tree
//!   property);
//! * along every edge the parent's *effective* coherency is at least as
//!   stringent as the child's (Eq. 1);
//! * a node's distinct-children count (its "push connections") never
//!   exceeds its degree of cooperation — enforced by the construction
//!   algorithms, checkable via [`D3g::validate`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::coherency::Coherency;
use crate::item::ItemId;
use crate::overlay::{NodeIdx, SOURCE};
use crate::workload::Workload;

/// The dissemination graph over `1 + n_repos` overlay nodes and `n_items`
/// items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct D3g {
    n_nodes: usize,
    n_items: usize,
    /// `effective[node][item]`: the coherency at which the node holds the
    /// item (its own need, possibly tightened to serve dependents).
    /// `None` when the node does not hold the item. The source implicitly
    /// holds everything at [`Coherency::EXACT`] and is stored that way.
    effective: Vec<Vec<Option<Coherency>>>,
    /// `parent[item][node]`: who serves `item` to `node`.
    parent: Vec<Vec<Option<NodeIdx>>>,
    /// `children[item][node]`: whom `node` serves `item` to.
    children: Vec<Vec<Vec<NodeIdx>>>,
    /// Distinct dependents per node (one push connection per child,
    /// regardless of how many items flow over it).
    child_set: Vec<BTreeSet<NodeIdx>>,
    /// Level of each node in the construction (source = 0); `u32::MAX`
    /// until the node joins.
    level: Vec<u32>,
}

/// Shape statistics of one item's dissemination tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct D3tStats {
    /// Nodes holding the item (including the source).
    pub n_nodes: usize,
    /// Longest root-to-leaf path, in edges.
    pub depth: usize,
    /// Largest per-item fan-out of any node.
    pub max_fanout: usize,
}

impl D3g {
    /// An empty graph: the source holds every item exactly; no repository
    /// has joined yet.
    pub fn new(n_repos: usize, n_items: usize) -> Self {
        let n_nodes = n_repos + 1;
        let mut effective = vec![vec![None; n_items]; n_nodes];
        effective[SOURCE.index()] = vec![Some(Coherency::EXACT); n_items];
        let mut level = vec![u32::MAX; n_nodes];
        level[SOURCE.index()] = 0;
        Self {
            n_nodes,
            n_items,
            effective,
            parent: vec![vec![None; n_nodes]; n_items],
            children: vec![vec![Vec::new(); n_nodes]; n_items],
            child_set: vec![BTreeSet::new(); n_nodes],
            level,
        }
    }

    /// Builds the no-cooperation configuration of Figures 5/6: the source
    /// directly serves every interested repository.
    pub fn flat(workload: &Workload) -> Self {
        let mut g = Self::new(workload.n_repos(), workload.n_items());
        for r in 0..workload.n_repos() {
            let node = NodeIdx::repo(r);
            g.set_level(node, 1);
            for (item, c) in workload.items_of(r) {
                g.add_edge(SOURCE, node, item, c);
            }
        }
        g
    }

    /// Number of overlay nodes (source + repositories).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Records that `parent` serves `item` to `child` at coherency `c`
    /// (the child's effective requirement, tightened against any previous
    /// requirement it had).
    ///
    /// # Panics
    /// Panics if `child` already has a parent for `item`, if `parent`
    /// doesn't hold the item at stringency ≤ `c`, or on a self-edge.
    pub fn add_edge(&mut self, parent: NodeIdx, child: NodeIdx, item: ItemId, c: Coherency) {
        assert!(parent != child, "self-edges are not allowed");
        assert!(!child.is_source(), "the source cannot be a dependent");
        let (pi, ci, ii) = (parent.index(), child.index(), item.index());
        assert!(self.parent[ii][ci].is_none(), "{child} already has a parent for {item}");
        // d3t-lint: allow(P001) -- documented `# Panics` contract of add_edge (caller misuse, not a run-time path)
        let pc = self.effective[pi][ii].unwrap_or_else(|| panic!("{parent} does not hold {item}"));
        assert!(
            pc.at_least_as_stringent_as(c),
            "Eq.(1) violated: parent {parent} holds {item} at {pc}, child needs {c}"
        );
        self.parent[ii][ci] = Some(parent);
        self.children[ii][pi].push(child);
        self.child_set[pi].insert(child);
        let cur = self.effective[ci][ii];
        self.effective[ci][ii] = Some(match cur {
            Some(existing) => existing.tighten(c),
            None => c,
        });
    }

    /// Tightens (or establishes) a node's effective coherency for an item
    /// without wiring edges — used by the augmentation cascade before the
    /// upward path exists.
    pub fn tighten_effective(&mut self, node: NodeIdx, item: ItemId, c: Coherency) {
        let slot = &mut self.effective[node.index()][item.index()];
        *slot = Some(match *slot {
            Some(existing) => existing.tighten(c),
            None => c,
        });
    }

    /// The coherency at which `node` holds `item`, if it does.
    pub fn effective(&self, node: NodeIdx, item: ItemId) -> Option<Coherency> {
        self.effective[node.index()][item.index()]
    }

    /// Who serves `item` to `node`.
    pub fn parent_of(&self, node: NodeIdx, item: ItemId) -> Option<NodeIdx> {
        self.parent[item.index()][node.index()]
    }

    /// Whom `node` pushes `item` to.
    pub fn children_of(&self, node: NodeIdx, item: ItemId) -> &[NodeIdx] {
        &self.children[item.index()][node.index()]
    }

    /// The node's distinct dependents across all items (its push
    /// connections).
    pub fn dependents(&self, node: NodeIdx) -> &BTreeSet<NodeIdx> {
        &self.child_set[node.index()]
    }

    /// Number of distinct dependents of `node`.
    pub fn n_dependents(&self, node: NodeIdx) -> usize {
        self.child_set[node.index()].len()
    }

    /// All distinct parents of `node` across items (used by the
    /// augmentation cascade's "ask one of its parents" step).
    pub fn parents(&self, node: NodeIdx) -> Vec<NodeIdx> {
        let mut set = BTreeSet::new();
        for item in 0..self.n_items {
            if let Some(p) = self.parent[item][node.index()] {
                set.insert(p);
            }
        }
        set.into_iter().collect()
    }

    /// Sets a node's construction level.
    pub fn set_level(&mut self, node: NodeIdx, level: u32) {
        self.level[node.index()] = level;
    }

    /// The node's construction level (`None` before it joins).
    pub fn level(&self, node: NodeIdx) -> Option<u32> {
        let l = self.level[node.index()];
        (l != u32::MAX).then_some(l)
    }

    /// Items held by `node`, with their effective coherencies.
    pub fn items_held(&self, node: NodeIdx) -> impl Iterator<Item = (ItemId, Coherency)> + '_ {
        self.effective[node.index()]
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (ItemId(i as u32), c)))
    }

    /// Depth of `node` in `item`'s tree (edges from the source), or `None`
    /// if the node doesn't hold the item.
    pub fn depth_in_item_tree(&self, node: NodeIdx, item: ItemId) -> Option<usize> {
        if node.is_source() {
            return Some(0);
        }
        self.effective(node, item)?;
        let mut cur = node;
        let mut depth = 0usize;
        while let Some(p) = self.parent_of(cur, item) {
            depth += 1;
            assert!(depth <= self.n_nodes, "cycle in d3t for {item}");
            if p.is_source() {
                return Some(depth);
            }
            cur = p;
        }
        None
    }

    /// Shape statistics for one item's tree.
    pub fn d3t_stats(&self, item: ItemId) -> D3tStats {
        let mut n_nodes = 1usize; // the source
        let mut depth = 0usize;
        let mut max_fanout = self.children_of(SOURCE, item).len();
        for node in 1..self.n_nodes {
            let node = NodeIdx(node as u32);
            if self.effective(node, item).is_some() && self.parent_of(node, item).is_some() {
                n_nodes += 1;
                if let Some(d) = self.depth_in_item_tree(node, item) {
                    depth = depth.max(d);
                }
                max_fanout = max_fanout.max(self.children_of(node, item).len());
            }
        }
        D3tStats { n_nodes, depth, max_fanout }
    }

    /// The maximum tree depth over all items — the paper's "diameter of
    /// the repository layout network" measured in overlay hops from the
    /// source (their chain of 100 repositories has diameter ~101).
    pub fn max_depth(&self) -> usize {
        (0..self.n_items).map(|i| self.d3t_stats(ItemId(i as u32)).depth).max().unwrap_or(0)
    }

    /// Mean tree depth over items (counting only items someone holds).
    pub fn mean_depth(&self) -> f64 {
        let depths: Vec<usize> =
            (0..self.n_items).map(|i| self.d3t_stats(ItemId(i as u32)).depth).collect();
        let nonzero: Vec<usize> = depths.into_iter().filter(|&d| d > 0).collect();
        if nonzero.is_empty() {
            0.0
        } else {
            nonzero.iter().sum::<usize>() as f64 / nonzero.len() as f64
        }
    }

    /// Checks every structural invariant; returns a description of the
    /// first violation found.
    pub fn validate(&self, max_dependents: Option<usize>) -> Result<(), String> {
        // Source holds everything exactly.
        for i in 0..self.n_items {
            if self.effective[SOURCE.index()][i] != Some(Coherency::EXACT) {
                return Err(format!("source does not hold item#{i} exactly"));
            }
        }
        for item_i in 0..self.n_items {
            let item = ItemId(item_i as u32);
            for node_i in 1..self.n_nodes {
                let node = NodeIdx(node_i as u32);
                let (held, parent) = (self.effective(node, item), self.parent_of(node, item));
                match (held, parent) {
                    (None, Some(p)) => {
                        return Err(format!("{node} has parent {p} for {item} but no effective c"))
                    }
                    (Some(c), Some(p)) => {
                        let pc = self
                            .effective(p, item)
                            .ok_or_else(|| format!("parent {p} of {node} lacks {item}"))?;
                        if !pc.at_least_as_stringent_as(c) {
                            return Err(format!(
                                "Eq.(1) violated on {p}->{node} for {item}: {pc} > {c}"
                            ));
                        }
                        if !self.children_of(p, item).contains(&node) {
                            return Err(format!("{p} missing child link to {node} for {item}"));
                        }
                        if self.depth_in_item_tree(node, item).is_none() {
                            return Err(format!("{node} unreachable from source for {item}"));
                        }
                    }
                    (Some(_), None) => {
                        return Err(format!("{node} holds {item} but has no parent"));
                    }
                    (None, None) => {}
                }
            }
            // children lists must mirror parent pointers
            for node_i in 0..self.n_nodes {
                let node = NodeIdx(node_i as u32);
                for &ch in self.children_of(node, item) {
                    if self.parent_of(ch, item) != Some(node) {
                        return Err(format!("dangling child {ch} under {node} for {item}"));
                    }
                }
            }
        }
        if let Some(cap) = max_dependents {
            for node_i in 0..self.n_nodes {
                let node = NodeIdx(node_i as u32);
                if self.n_dependents(node) > cap {
                    return Err(format!(
                        "{node} has {} dependents, exceeding cap {cap}",
                        self.n_dependents(node)
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Coherency {
        Coherency::new(v)
    }

    #[test]
    fn flat_graph_wires_source_to_all() {
        let w =
            Workload::from_needs(vec![vec![Some(c(0.1)), None], vec![Some(c(0.2)), Some(c(0.3))]]);
        let g = D3g::flat(&w);
        assert_eq!(g.parent_of(NodeIdx::repo(0), ItemId(0)), Some(SOURCE));
        assert_eq!(g.parent_of(NodeIdx::repo(1), ItemId(1)), Some(SOURCE));
        assert_eq!(g.parent_of(NodeIdx::repo(0), ItemId(1)), None);
        assert_eq!(g.n_dependents(SOURCE), 2);
        assert!(g.validate(None).is_ok());
        assert_eq!(g.max_depth(), 1);
    }

    #[test]
    fn add_edge_tracks_children_and_effective() {
        let mut g = D3g::new(2, 1);
        let (r0, r1) = (NodeIdx::repo(0), NodeIdx::repo(1));
        g.add_edge(SOURCE, r0, ItemId(0), c(0.1));
        g.add_edge(r0, r1, ItemId(0), c(0.5));
        assert_eq!(g.effective(r0, ItemId(0)), Some(c(0.1)));
        assert_eq!(g.effective(r1, ItemId(0)), Some(c(0.5)));
        assert_eq!(g.children_of(r0, ItemId(0)), &[r1]);
        assert_eq!(g.parents(r1), vec![r0]);
        assert_eq!(g.depth_in_item_tree(r1, ItemId(0)), Some(2));
        assert!(g.validate(Some(1)).is_ok());
    }

    #[test]
    #[should_panic(expected = "Eq.(1) violated")]
    fn add_edge_rejects_less_stringent_parent() {
        let mut g = D3g::new(2, 1);
        let (r0, r1) = (NodeIdx::repo(0), NodeIdx::repo(1));
        g.add_edge(SOURCE, r0, ItemId(0), c(0.5));
        g.add_edge(r0, r1, ItemId(0), c(0.1)); // child tighter than parent
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn add_edge_rejects_second_parent_for_item() {
        let mut g = D3g::new(2, 1);
        let r0 = NodeIdx::repo(0);
        g.add_edge(SOURCE, r0, ItemId(0), c(0.5));
        let r1 = NodeIdx::repo(1);
        g.add_edge(SOURCE, r1, ItemId(0), c(0.5));
        g.add_edge(r1, r0, ItemId(0), c(0.5));
    }

    #[test]
    fn tighten_effective_only_tightens() {
        let mut g = D3g::new(1, 1);
        let r0 = NodeIdx::repo(0);
        g.tighten_effective(r0, ItemId(0), c(0.5));
        g.tighten_effective(r0, ItemId(0), c(0.2));
        g.tighten_effective(r0, ItemId(0), c(0.9));
        assert_eq!(g.effective(r0, ItemId(0)), Some(c(0.2)));
    }

    #[test]
    fn d3t_stats_of_chain() {
        let mut g = D3g::new(3, 1);
        let item = ItemId(0);
        g.add_edge(SOURCE, NodeIdx::repo(0), item, c(0.1));
        g.add_edge(NodeIdx::repo(0), NodeIdx::repo(1), item, c(0.2));
        g.add_edge(NodeIdx::repo(1), NodeIdx::repo(2), item, c(0.3));
        let s = g.d3t_stats(item);
        assert_eq!(s.n_nodes, 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_fanout, 1);
        assert_eq!(g.max_depth(), 3);
        assert_eq!(g.mean_depth(), 3.0);
    }

    #[test]
    fn validate_catches_orphan_effective() {
        let mut g = D3g::new(1, 1);
        g.tighten_effective(NodeIdx::repo(0), ItemId(0), c(0.1));
        let err = g.validate(None).unwrap_err();
        assert!(err.contains("no parent"), "{err}");
    }

    #[test]
    fn levels_default_unset() {
        let g = D3g::new(1, 1);
        assert_eq!(g.level(SOURCE), Some(0));
        assert_eq!(g.level(NodeIdx::repo(0)), None);
    }
}
