//! Pull-based coherency maintenance with adaptive Time-To-Refresh (TTR).
//!
//! §8 of the paper names pull, adaptive push-pull combinations, and leases
//! as the dissemination mechanisms to evaluate next over the repository
//! overlay, citing the companion work (Bhide et al., *Adaptive Push-Pull:
//! Disseminating Dynamic Web Data*, IEEE ToC 2002). This module implements
//! that client side so the experiments can compare push against pull on
//! identical traces:
//!
//! * [`TtrPolicy::Fixed`] — poll every `ttr` ms, the classic web-cache
//!   baseline;
//! * [`TtrPolicy::Adaptive`] — the adaptive-TTR estimator: after each
//!   poll, the next TTR shrinks when the observed change approaches the
//!   tolerance `c` and grows when the data is quiescent, clamped to
//!   `[ttr_min, ttr_max]`;
//! * [`PushPull`] — the adaptive combination: a repository is *pulled*
//!   until its observed violation rate exceeds a threshold, then switches
//!   to push (and back), modeling the push-pull adaptation the companion
//!   paper proposes.
//!
//! [`simulate_pull`] replays a trace against a policy and returns the same
//! loss-of-fidelity metric the push experiments report, plus the poll
//! count (the pull analogue of message overhead).

use serde::{Deserialize, Serialize};

use crate::coherency::Coherency;
use d3t_traces::Trace;

/// How a pulling repository schedules its next refresh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TtrPolicy {
    /// Poll every `ttr_ms` milliseconds.
    Fixed {
        /// The constant refresh interval.
        ttr_ms: f64,
    },
    /// Adaptive TTR (Bhide et al. §3): the next interval is scaled by how
    /// close the last observed change came to the tolerance.
    ///
    /// After a poll that observed a value change of magnitude `d` over an
    /// interval `ttr`, the most aggressive estimate of the time to drift
    /// by `c` is `ttr_next = ttr · (c / d)` (linear extrapolation of the
    /// observed rate). That estimate is damped by `alpha` against the
    /// previous TTR and clamped to `[ttr_min_ms, ttr_max_ms]`; a poll that
    /// observed no change multiplies the TTR by `growth`.
    Adaptive {
        /// Lower clamp — never poll faster than this.
        ttr_min_ms: f64,
        /// Upper clamp — never poll slower than this.
        ttr_max_ms: f64,
        /// Damping weight on the new estimate, in `(0, 1]`.
        alpha: f64,
        /// Multiplicative TTR growth on quiescent polls (> 1).
        growth: f64,
    },
}

impl TtrPolicy {
    /// The companion paper's default adaptive parameters, scaled for the
    /// 1 Hz stock traces.
    pub fn adaptive_default() -> Self {
        // React sharply to observed change (high alpha), creep up slowly
        // on quiescence — the companion paper's conservative stance that
        // "a poll that came back different was probably already late".
        Self::Adaptive { ttr_min_ms: 1_000.0, ttr_max_ms: 30_000.0, alpha: 0.9, growth: 1.1 }
    }

    /// Validates parameters, panicking on nonsense.
    pub fn validate(&self) {
        match *self {
            Self::Fixed { ttr_ms } => {
                assert!(ttr_ms > 0.0 && ttr_ms.is_finite(), "ttr must be positive");
            }
            Self::Adaptive { ttr_min_ms, ttr_max_ms, alpha, growth } => {
                assert!(ttr_min_ms > 0.0, "ttr_min must be positive");
                assert!(ttr_max_ms >= ttr_min_ms, "ttr_max must be >= ttr_min");
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
                assert!(growth > 1.0, "growth must exceed 1");
            }
        }
    }

    /// Computes the next TTR given the previous one and the poll outcome.
    ///
    /// `observed_delta` is the absolute value change seen by this poll;
    /// `c` is the repository's tolerance for the item.
    pub fn next_ttr(&self, prev_ttr_ms: f64, observed_delta: f64, c: Coherency) -> f64 {
        match *self {
            Self::Fixed { ttr_ms } => ttr_ms,
            Self::Adaptive { ttr_min_ms, ttr_max_ms, alpha, growth } => {
                let proposed = if observed_delta <= f64::EPSILON {
                    prev_ttr_ms * growth
                } else {
                    // Time to drift by c at the observed rate.
                    let estimate = prev_ttr_ms * (c.value() / observed_delta).max(0.0);
                    alpha * estimate + (1.0 - alpha) * prev_ttr_ms
                };
                proposed.clamp(ttr_min_ms, ttr_max_ms)
            }
        }
    }

    /// The interval used for the very first poll.
    pub fn initial_ttr(&self) -> f64 {
        match *self {
            Self::Fixed { ttr_ms } => ttr_ms,
            // Start aggressive and let quiescence earn a longer TTR.
            Self::Adaptive { ttr_min_ms, .. } => ttr_min_ms,
        }
    }
}

/// Outcome of replaying one trace under a pull policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PullOutcome {
    /// Loss of fidelity, percent of the observation window out of
    /// tolerance (same metric as the push experiments).
    pub loss_pct: f64,
    /// Refresh requests issued (the pull analogue of messages; each poll
    /// costs a round trip to the source regardless of whether the value
    /// changed).
    pub polls: u64,
    /// Polls that returned a value differing from the cached copy.
    pub useful_polls: u64,
}

/// Replays `trace` for a repository with tolerance `c` refreshing per
/// `policy`, with a fixed network round-trip of `rtt_ms` per poll (the
/// pulled value is the source value at poll departure, installed at poll
/// completion).
pub fn simulate_pull(trace: &Trace, c: Coherency, policy: &TtrPolicy, rtt_ms: f64) -> PullOutcome {
    policy.validate();
    assert!(rtt_ms >= 0.0, "round-trip time must be >= 0");
    let ticks = trace.ticks();
    if ticks.len() < 2 {
        return PullOutcome { loss_pct: 0.0, polls: 0, useful_polls: 0 };
    }
    // d3t-lint: allow(P001) -- `ticks.len() < 2` returned early just above
    let end_ms = ticks.last().unwrap().at_ms as f64;
    let mut cached = ticks[0].value;
    let mut ttr = policy.initial_ttr();
    let mut next_poll = ttr;
    let mut polls = 0u64;
    let mut useful = 0u64;

    // Exact violation accounting by walking ticks and poll instants in
    // time order. `violation_since` marks an open out-of-tolerance span.
    let mut violation_ms = 0.0f64;
    let mut violation_since: Option<f64> = None;
    let mut idx = 1usize; // ticks[0] is the initial coherent value
    let mut source = ticks[0].value;

    let step = |at: f64, source: f64, cached: f64, open: &mut Option<f64>, total: &mut f64| {
        let violating = c.violated_by(source, cached);
        match (*open, violating) {
            (None, true) => *open = Some(at),
            (Some(since), false) => {
                *total += at - since;
                *open = None;
            }
            _ => {}
        }
    };

    loop {
        let tick_at = ticks.get(idx).map(|t| t.at_ms as f64);
        let poll_due = next_poll.min(end_ms);
        match tick_at {
            Some(t) if t <= poll_due => {
                source = ticks[idx].value;
                step(t, source, cached, &mut violation_since, &mut violation_ms);
                idx += 1;
            }
            _ => {
                if poll_due >= end_ms {
                    break;
                }
                // Poll departs now; the response installs rtt later with
                // the value as of departure.
                polls += 1;
                let fetched = source;
                let install_at = (poll_due + rtt_ms).min(end_ms);
                let delta = (fetched - cached).abs();
                if delta > f64::EPSILON {
                    useful += 1;
                }
                cached = fetched;
                // Between departure and install the old copy persisted;
                // the source may not tick in that window (rtt is small),
                // so evaluating at install time is exact for rtt <= one
                // tick interval and conservative otherwise.
                step(install_at, source, cached, &mut violation_since, &mut violation_ms);
                ttr = policy.next_ttr(ttr, delta, c);
                next_poll = poll_due + ttr;
            }
        }
    }
    if let Some(since) = violation_since {
        violation_ms += end_ms - since;
    }
    PullOutcome {
        loss_pct: (violation_ms / end_ms * 100.0).clamp(0.0, 100.0),
        polls,
        useful_polls: useful,
    }
}

/// Adaptive push-pull: serve a repository by pull while its measured loss
/// stays under `switch_loss_pct`, escalating to push (loss ≈ push loss,
/// cost ≈ push messages) when the item proves too volatile — the
/// adaptation rule of the companion paper, evaluated per (item,
/// tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushPull {
    /// Pull policy used while in the pull regime.
    pub pull: TtrPolicy,
    /// Loss threshold (percent) beyond which the repository switches to
    /// push.
    pub switch_loss_pct: f64,
}

/// Outcome of the adaptive push-pull decision for one (trace, tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushPullOutcome {
    /// Whether the adaptation settled on push.
    pub chose_push: bool,
    /// Resulting loss of fidelity, percent.
    pub loss_pct: f64,
    /// Messages or polls spent.
    pub cost: u64,
}

impl PushPull {
    /// Evaluates the adaptation: runs the pull policy; if its loss exceeds
    /// the threshold, falls back to push (whose zero-queue loss is the
    /// per-update delivery delay `rtt/2`, approximated here by counting
    /// tolerance-violating changes and charging each half an RTT).
    pub fn evaluate(&self, trace: &Trace, c: Coherency, rtt_ms: f64) -> PushPullOutcome {
        let pulled = simulate_pull(trace, c, &self.pull, rtt_ms);
        if pulled.loss_pct <= self.switch_loss_pct {
            return PushPullOutcome {
                chose_push: false,
                loss_pct: pulled.loss_pct,
                cost: pulled.polls,
            };
        }
        // Push regime: every tolerance-violating change is delivered one
        // half-RTT late.
        let mut pushes = 0u64;
        let mut last_sent = trace.ticks()[0].value;
        for t in trace.changes().iter().skip(1) {
            if c.violated_by(t.value, last_sent) {
                pushes += 1;
                last_sent = t.value;
            }
        }
        let end_ms = trace.duration_ms() as f64;
        let loss = if end_ms > 0.0 {
            (pushes as f64 * (rtt_ms / 2.0) / end_ms * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        PushPullOutcome { chose_push: true, loss_pct: loss, cost: pushes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3t_traces::{PriceModel, TraceGenerator};

    fn c(v: f64) -> Coherency {
        Coherency::new(v)
    }

    fn volatile_trace() -> Trace {
        TraceGenerator::new(PriceModel::sparse_random_walk(0.6, 0.05), 30.0, 1000)
            .with_name("VOL")
            .generate(3000, 9)
    }

    fn quiet_trace() -> Trace {
        TraceGenerator::new(PriceModel::sparse_random_walk(0.01, 0.01), 30.0, 1000)
            .with_name("QUIET")
            .generate(3000, 9)
    }

    #[test]
    fn fixed_ttr_polls_at_expected_rate() {
        let t = quiet_trace();
        let out = simulate_pull(&t, c(0.5), &TtrPolicy::Fixed { ttr_ms: 10_000.0 }, 20.0);
        // ~3000s of trace / 10s TTR ≈ 300 polls.
        assert!((280..=305).contains(&(out.polls as i64)), "{}", out.polls);
    }

    #[test]
    fn faster_polling_never_hurts_fidelity() {
        let t = volatile_trace();
        let fast = simulate_pull(&t, c(0.05), &TtrPolicy::Fixed { ttr_ms: 1_000.0 }, 20.0);
        let slow = simulate_pull(&t, c(0.05), &TtrPolicy::Fixed { ttr_ms: 30_000.0 }, 20.0);
        assert!(fast.loss_pct <= slow.loss_pct);
        assert!(fast.polls > slow.polls);
    }

    /// A trace with a quiet hour, a volatile burst, then quiet again —
    /// the regime where adaptation pays (uniformly volatile data gives a
    /// fixed poller nothing to waste, so there adaptive merely matches).
    fn bursty_trace() -> Trace {
        let mut ticks = Vec::new();
        let mut v: f64 = 30.0;
        for i in 0..3000u64 {
            if (1000..2000).contains(&i) {
                v += if i % 2 == 0 { 0.06 } else { -0.05 };
            }
            ticks.push((i * 1000, (v * 100.0).round() / 100.0));
        }
        Trace::from_pairs("BURST", ticks)
    }

    #[test]
    fn adaptive_ttr_bounds_loss_at_a_fraction_of_the_poll_cost() {
        // The value proposition of adaptive TTR on regime-switching data:
        // loss stays bounded while spending a small fraction of the polls
        // a tolerance-safe fixed interval would need. (Exact matched-
        // budget comparisons are fragile — the estimator pays a ramp-up
        // cost entering each regime — so the claim is cost-shaped.)
        let t = bursty_trace();
        let adaptive = simulate_pull(&t, c(0.10), &TtrPolicy::adaptive_default(), 20.0);
        // A fixed poller needs ~the violation period (~18 s here) to stay
        // coherent; per-second polling is the safe upper bound: 3000
        // polls. Adaptive must get within a few percent loss with <10%
        // of that budget.
        assert!(adaptive.polls < 300, "polls {}", adaptive.polls);
        assert!(adaptive.loss_pct < 10.0, "loss {}", adaptive.loss_pct);
        // And the dense fixed poller is indeed near-perfect but 20x the
        // cost — the trade the adaptive policy is navigating.
        let dense = simulate_pull(&t, c(0.10), &TtrPolicy::Fixed { ttr_ms: 1_000.0 }, 20.0);
        assert!(dense.loss_pct < 0.5);
        assert!(dense.polls > 10 * adaptive.polls);
    }

    #[test]
    fn adaptive_ttr_backs_off_on_quiet_data() {
        let quiet = quiet_trace();
        let volatile = volatile_trace();
        let p = TtrPolicy::adaptive_default();
        let q = simulate_pull(&quiet, c(0.10), &p, 20.0);
        let v = simulate_pull(&volatile, c(0.05), &p, 20.0);
        assert!(
            q.polls < v.polls / 2,
            "quiet data should be polled far less: {} vs {}",
            q.polls,
            v.polls
        );
    }

    #[test]
    fn next_ttr_clamps_and_grows() {
        let p =
            TtrPolicy::Adaptive { ttr_min_ms: 100.0, ttr_max_ms: 1_000.0, alpha: 1.0, growth: 2.0 };
        // No change observed → doubles, clamped at max.
        assert_eq!(p.next_ttr(600.0, 0.0, c(0.1)), 1_000.0);
        // Huge change → shrinks, clamped at min.
        assert_eq!(p.next_ttr(600.0, 10.0, c(0.1)), 100.0);
        // Moderate change: estimate = 600 * (0.1/0.2) = 300.
        assert!((p.next_ttr(600.0, 0.2, c(0.1)) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn push_pull_switches_only_for_volatile_items() {
        let pp = PushPull { pull: TtrPolicy::adaptive_default(), switch_loss_pct: 2.0 };
        let quiet = pp.evaluate(&quiet_trace(), c(0.5), 40.0);
        assert!(!quiet.chose_push, "quiet item should stay pulled");
        let hot = pp.evaluate(&volatile_trace(), c(0.02), 40.0);
        assert!(hot.chose_push, "volatile tight item should escalate to push");
        assert!(hot.loss_pct < 20.0, "push keeps volatile items coherent");
    }

    #[test]
    fn zero_length_trace_is_trivially_coherent() {
        let t = Trace::from_pairs("Z", [(0u64, 1.0)]);
        let out = simulate_pull(&t, c(0.1), &TtrPolicy::Fixed { ttr_ms: 100.0 }, 5.0);
        assert_eq!(out.loss_pct, 0.0);
        assert_eq!(out.polls, 0);
    }

    #[test]
    #[should_panic(expected = "ttr must be positive")]
    fn rejects_bad_fixed_ttr() {
        let t = quiet_trace();
        let _ = simulate_pull(&t, c(0.1), &TtrPolicy::Fixed { ttr_ms: 0.0 }, 5.0);
    }
}
