//! A portable best-effort cache-prefetch hint.

/// Requests a read prefetch of the cache line holding `p` (T0 locality).
/// Compiles to `prefetcht0` on x86-64 and to nothing elsewhere; purely a
/// performance hint — it never faults, whatever the pointer state.
#[inline(always)]
pub(crate) fn read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint with no memory-access
    // semantics; it never faults, even on null or dangling pointers.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}
