//! The fidelity metric — §6.2 of the paper.
//!
//! Fidelity of a (repository, item) pair is the fraction of observation
//! time during which `|P(t) − S(t)| ≤ c`. Both `S` (source) and `P`
//! (repository copy) are piecewise-constant, so the deviation only changes
//! at source ticks and repository-arrival instants; the tracker does exact
//! interval accounting over those events.
//!
//! Times are **integer microseconds** end to end — the same currency the
//! discrete-event engine schedules in — so the accounting is exact integer
//! arithmetic until the final percentage division.
//!
//! Aggregation follows the paper: "The fidelity of a repository is the mean
//! fidelity over all data items stored at that repository, while the
//! overall fidelity of the system is the mean fidelity of all
//! repositories." Results are reported as **loss of fidelity** =
//! `100·(1 − fidelity)` percent.
//!
//! Only *user* needs are measured: items a repository carries purely to
//! relay to dependents (LeLA augmentation) do not contribute to its
//! fidelity, matching the paper's user-centric definition.

use serde::{Deserialize, Serialize};

use crate::coherency::Coherency;
use crate::item::ItemId;
use crate::overlay::NodeIdx;
use crate::workload::Workload;

/// The hot per-stream state the update calls touch, packed into 16
/// bytes (four records per cache line, never straddling) so both the
/// per-arrival access and the per-source-tick slice scan stay cheap.
///
/// `c` encodes three things in one float: its **magnitude** is the
/// tolerance, its **sign bit** marks "a violation interval is open"
/// (`-0.0` covers the EXACT tolerance), and **NaN** marks an unmeasured
/// `(repo, item)` slot — NaN fails every violation test and never has
/// the sign set by a transition, so holes are inert without a branch.
/// The open interval's start time and the accumulated violation time
/// live in parallel cold arrays touched only on the (rare) transitions
/// and in the final report.
#[derive(Debug, Clone)]
struct PairHot {
    /// `sign → interval open` | `|c| → tolerance` | `NaN → unmeasured`.
    c: f64,
    repo_value: f64,
}

/// Exact interval-accounting fidelity tracker.
///
/// Layout is tuned for the engine's two hot calls, and **indexed
/// directly by `(item, overlay node)`** — `pairs[item * (n_repos + 1) +
/// node]`, unmeasured slots carrying a NaN tolerance — so an arrival
/// reaches its 16-byte hot pair record in one indexed load with *no
/// pair-table indirection* (the address depends only on the event, which
/// is what lets the simulator prefetch it a few events ahead), while a
/// source tick still walks one contiguous slice. Cold state (violation
/// totals) sits in a parallel array only transitions and the report
/// read.
#[derive(Debug, Clone)]
pub struct FidelityTracker {
    n_repos: usize,
    /// Number of measured (non-NaN) slots.
    n_measured: usize,
    /// Current source value per item.
    source_value: Vec<f64>,
    /// Hot state per `(item, node)` slot, row stride `n_repos + 1`
    /// (index 0 of each row is the source — always an inert hole).
    pairs: Vec<PairHot>,
    /// Cold: start of the slot's open violation interval (valid only
    /// while the hot record's sign bit is set).
    violation_started: Vec<u64>,
    /// Cold: violating time accumulated per slot, µs.
    violation_total_us: Vec<u64>,
    start_us: u64,
}

impl FidelityTracker {
    /// Starts tracking at time `start_us` (µs) with every repository
    /// coherent at `initial_values[item]`.
    pub fn new(workload: &Workload, initial_values: &[f64], start_us: u64) -> Self {
        assert_eq!(initial_values.len(), workload.n_items(), "one initial value per item");
        let n_items = workload.n_items();
        let n_repos = workload.n_repos();
        let stride = n_repos + 1;
        let mut pairs = Vec::with_capacity(n_items * stride);
        for &v in initial_values {
            for _ in 0..stride {
                pairs.push(PairHot { c: f64::NAN, repo_value: v });
            }
        }
        let mut n_measured = 0usize;
        for repo in 0..n_repos {
            for (item, c) in workload.items_of(repo) {
                pairs[item.index() * stride + repo + 1].c = c.value();
                n_measured += 1;
            }
        }
        Self {
            n_repos,
            n_measured,
            source_value: initial_values.to_vec(),
            violation_started: vec![0; pairs.len()],
            violation_total_us: vec![0; pairs.len()],
            pairs,
            start_us,
        }
    }

    /// Flat slot of `(item, node)` in the hot array.
    #[inline]
    fn slot(&self, item: ItemId, node_index: usize) -> usize {
        item.index() * (self.n_repos + 1) + node_index
    }

    /// Records a new source value at time `at_us` (µs) and re-evaluates
    /// every measured pair on the item — one contiguous slice scan.
    pub fn source_update(&mut self, at_us: u64, item: ItemId, value: f64) {
        self.source_update_sink(at_us, item, value, &mut |_, _, _| {});
    }

    /// [`FidelityTracker::source_update`] that also reports every
    /// violation-interval transition to `sink` as
    /// `(repo, item, opened)` — `opened == true` when a violation interval
    /// starts at `at_us`, `false` when one closes. A no-op closure
    /// monomorphizes to exactly the unobserved scan.
    pub fn source_update_sink<F: FnMut(usize, ItemId, bool)>(
        &mut self,
        at_us: u64,
        item: ItemId,
        value: f64,
        sink: &mut F,
    ) {
        self.source_value[item.index()] = value;
        // The item's full node row minus the source hole at index 0;
        // unmeasured holes are NaN-inert.
        let lo = self.slot(item, 1);
        let hi = self.slot(item, self.n_repos + 1);
        let starts = &mut self.violation_started[lo..hi];
        let totals = &mut self.violation_total_us[lo..hi];
        let pairs = &mut self.pairs[lo..hi];
        let n = pairs.len();
        // Same chunked mask-accumulate shape as the dissemination check
        // kernel: a branch-free "state must flip" predicate per 8-lane
        // chunk (the 16-byte records interleave exactly the two floats
        // the predicate needs), with the scalar interval bookkeeping and
        // sink reserved for the rare set bits, in ascending slot order.
        const LANES: usize = 8;
        let mut base = 0usize;
        while base + LANES <= n {
            let mut mask = 0u32;
            for lane in 0..LANES {
                let p = &pairs[base + lane];
                let violating =
                    (value - p.repo_value).abs() > p.c.abs() + crate::coherency::VALUE_EPSILON;
                mask |= ((violating != p.c.is_sign_negative()) as u32) << lane;
            }
            while mask != 0 {
                let k = base + mask.trailing_zeros() as usize;
                let opened =
                    Self::transition(&mut pairs[k], &mut starts[k], &mut totals[k], at_us, value)
                        // d3t-lint: allow(P001) -- the mask bit was set iff transition() returns Some
                        .expect("predicate said the state flips");
                sink(k, item, opened);
                mask &= mask - 1;
            }
            base += LANES;
        }
        for k in base..n {
            if let Some(opened) =
                Self::transition(&mut pairs[k], &mut starts[k], &mut totals[k], at_us, value)
            {
                sink(k, item, opened);
            }
        }
    }

    /// Records an update arriving at a repository at time `at_us` (µs).
    /// Arrivals for unmeasured (relay-only) items are ignored.
    pub fn repo_update(&mut self, at_us: u64, node: NodeIdx, item: ItemId, value: f64) {
        self.repo_update_sink(at_us, node, item, value, &mut |_, _, _| {});
    }

    /// [`FidelityTracker::repo_update`] with the same transition `sink` as
    /// [`FidelityTracker::source_update_sink`].
    pub fn repo_update_sink<F: FnMut(usize, ItemId, bool)>(
        &mut self,
        at_us: u64,
        node: NodeIdx,
        item: ItemId,
        value: f64,
        sink: &mut F,
    ) {
        assert!(!node.is_source(), "the source has no measured pairs");
        let sv = self.source_value[item.index()];
        let j = self.slot(item, node.index());
        let p = &mut self.pairs[j];
        // Unconditional: an unmeasured (relay-only) slot is NaN-inert,
        // so recording its value is harmless and branch-free.
        p.repo_value = value;
        if let Some(opened) = Self::transition(
            p,
            &mut self.violation_started[j],
            &mut self.violation_total_us[j],
            at_us,
            sv,
        ) {
            sink(node.index() - 1, item, opened);
        }
    }

    /// Applies a whole reorder-free run of staged touches — source ticks
    /// and delivered arrivals, in the same staging order
    /// [`Disseminator::on_run_into`](crate::dissemination::Disseminator::on_run_into)
    /// takes them (any order preserving same-item relative order) —
    /// reporting every violation-interval transition as
    /// `(touch idx, repo, item, opened)`.
    ///
    /// Fidelity state is strictly per `(item, node)` slot, and within one
    /// item the staged order **is** the event order, so replaying the
    /// staged run transitions exactly as the scalar per-event calls
    /// would. When the caller groups a long run by item, the source-tick
    /// slice scans and per-arrival slot touches of one item additionally
    /// stay adjacent in the pair table instead of interleaving across
    /// items. Transitions arrive grouped by staged touch (ascending slot
    /// order within a source tick, same as
    /// [`FidelityTracker::source_update_sink`]); the caller re-orders by
    /// `idx` when it needs original event order.
    pub fn on_run_sink<F: FnMut(u32, usize, ItemId, bool)>(
        &mut self,
        touches: &[crate::dissemination::RunTouch],
        sink: &mut F,
    ) {
        // Short-lead prefetch (a few touches of distance covers the
        // pair-table latency without flooding the fill buffers). The
        // source hole (slot 0) shares the row with slot 1, so it is a
        // safe warm-up target for source ticks too.
        const AHEAD: usize = 4;
        for t in touches.iter().take(AHEAD) {
            let nx = if t.node.is_source() { 0 } else { t.node.index() };
            crate::prefetch::read(&self.pairs[self.slot(t.item, nx)]);
        }
        for (k, t) in touches.iter().enumerate() {
            if let Some(next) = touches.get(k + AHEAD) {
                let nx = if next.node.is_source() { 0 } else { next.node.index() };
                crate::prefetch::read(&self.pairs[self.slot(next.item, nx)]);
            }
            let idx = t.idx;
            if t.node.is_source() {
                self.source_update_sink(t.at_us, t.item, t.value, &mut |repo, item, opened| {
                    sink(idx, repo, item, opened)
                });
            } else {
                self.repo_update_sink(
                    t.at_us,
                    t.node,
                    t.item,
                    t.value,
                    &mut |repo, item, opened| sink(idx, repo, item, opened),
                );
            }
        }
    }

    /// Renegotiates the tolerance of one measured `(repo, item)` pair at
    /// time `at_us` (µs) — the incremental mutation entry point mid-run
    /// dynamics use. The pair's open-violation state is re-evaluated **at
    /// the mutation instant** against the current source and repository
    /// values: tightening may open an interval at exactly `at_us`,
    /// loosening may close one. Transitions are reported through `sink`
    /// like the update calls. Returns the tolerance previously in force,
    /// or `None` (and changes nothing) when the pair is not measured.
    pub fn set_tolerance<F: FnMut(usize, ItemId, bool)>(
        &mut self,
        at_us: u64,
        repo: usize,
        item: ItemId,
        c: Coherency,
        sink: &mut F,
    ) -> Option<Coherency> {
        let j = self.slot(item, repo + 1);
        if self.pairs[j].c.is_nan() {
            return None;
        }
        let sv = self.source_value[item.index()];
        let p = &mut self.pairs[j];
        let old = Coherency::new(p.c.abs());
        // Install the new magnitude, carrying the open flag over — the
        // transition below re-evaluates it at the mutation instant.
        p.c = if p.c.is_sign_negative() { -c.value() } else { c.value() };
        if let Some(opened) = Self::transition(
            p,
            &mut self.violation_started[j],
            &mut self.violation_total_us[j],
            at_us,
            sv,
        ) {
            sink(repo, item, opened);
        }
        Some(old)
    }

    /// The tolerance currently in force for a measured pair (`None` when
    /// the repository does not measure the item).
    pub fn tolerance_of(&self, repo: usize, item: ItemId) -> Option<Coherency> {
        let c = self.pairs[self.slot(item, repo + 1)].c;
        if c.is_nan() {
            None
        } else {
            Some(Coherency::new(c.abs()))
        }
    }

    /// Closes `finish`-style any still-open intervals in place (shared by
    /// nothing else; kept next to `finish` for clarity).
    fn settle_open_intervals(&mut self, end_us: u64) {
        for (j, p) in self.pairs.iter_mut().enumerate() {
            if p.c.is_sign_negative() {
                self.violation_total_us[j] += end_us - self.violation_started[j];
                p.c = p.c.abs();
            }
        }
    }

    /// Measured slots in report order (item-major, repositories
    /// ascending): `(slot, repo, item, tolerance)`.
    fn measured(&self) -> impl Iterator<Item = (usize, usize, ItemId, Coherency)> + '_ {
        let stride = self.n_repos + 1;
        self.pairs.iter().enumerate().filter_map(move |(j, p)| {
            if p.c.is_nan() {
                None
            } else {
                Some((j, j % stride - 1, ItemId((j / stride) as u32), Coherency::new(p.c.abs())))
            }
        })
    }

    /// Number of measured (repository, item) pairs.
    pub fn n_pairs(&self) -> usize {
        self.n_measured
    }

    /// Hints the CPU to pull the pair record an imminent
    /// [`FidelityTracker::repo_update`] for `(node, item)` will touch —
    /// the slot address depends only on the event, which is what lets an
    /// event loop that knows its next few deliveries overlap their cache
    /// misses. No-op off x86-64; never faults.
    #[inline]
    pub fn prefetch_pair(&self, node: NodeIdx, item: ItemId) {
        crate::prefetch::read(&self.pairs[self.slot(item, node.index())]);
    }

    /// Applies the pair's violation-interval state machine at `at_us`.
    /// Returns `Some(true)` when a violation interval opens, `Some(false)`
    /// when one closes, `None` when the state is unchanged (always, for a
    /// NaN-tolerance hole: the test compares false and a hole's sign bit
    /// is never set). `started`/`total_us` are the pair's cold interval
    /// bookkeeping, touched only when the state actually flips.
    #[inline]
    fn transition(
        p: &mut PairHot,
        started: &mut u64,
        total_us: &mut u64,
        at_us: u64,
        source_value: f64,
    ) -> Option<bool> {
        // Raw Eq.-3 test (`Coherency::violated_by` on the magnitude):
        // NaN tolerance compares false, keeping holes closed forever.
        let violating_now =
            (source_value - p.repo_value).abs() > p.c.abs() + crate::coherency::VALUE_EPSILON;
        if violating_now == p.c.is_sign_negative() {
            return None;
        }
        if violating_now {
            *started = at_us;
            p.c = -p.c.abs();
            Some(true)
        } else {
            *total_us += at_us - *started;
            p.c = p.c.abs();
            Some(false)
        }
    }

    /// Adopts one repository's mutable column — hot pair records and
    /// cold interval bookkeeping for every item — from another tracker
    /// over the same workload.
    ///
    /// This is the sharded-snapshot merge primitive: every shard runs a
    /// full-size tracker and sees every source tick, but only the
    /// owning shard applies a repository's arrivals, so only the owner's
    /// column for that repository matches the sequential oracle. Merging
    /// copies each owner's columns over a clone of any one replica
    /// (source values are already identical everywhere).
    ///
    /// # Panics
    /// Debug-asserts the two trackers share one workload shape.
    pub fn copy_repo_from(&mut self, src: &FidelityTracker, repo: usize) {
        debug_assert_eq!(self.n_repos, src.n_repos);
        debug_assert_eq!(self.pairs.len(), src.pairs.len());
        let stride = self.n_repos + 1;
        let n_items = self.pairs.len() / stride;
        for item in 0..n_items {
            let j = item * stride + repo + 1;
            self.pairs[j] = src.pairs[j].clone();
            self.violation_started[j] = src.violation_started[j];
            self.violation_total_us[j] = src.violation_total_us[j];
        }
    }

    /// Adopts the source-side value column from another tracker over
    /// the same workload — the companion to
    /// [`FidelityTracker::copy_repo_from`] when the destination is a
    /// freshly built tracker: every shard replays every source tick, so
    /// any replica's source values are the sequential ones.
    ///
    /// # Panics
    /// Debug-asserts the two trackers share one workload shape.
    pub fn copy_source_from(&mut self, src: &FidelityTracker) {
        debug_assert_eq!(self.source_value.len(), src.source_value.len());
        self.source_value.clone_from(&src.source_value);
    }

    /// Measured pairs whose violation interval is currently open, as
    /// `(repo, item, started_us)` in slot order. Resuming a session
    /// from a snapshot replays these into the fresh observer so
    /// windowed-fidelity style observers start with the same open
    /// intervals the uninterrupted run was carrying.
    pub fn open_violations(&self) -> impl Iterator<Item = (usize, ItemId, u64)> + '_ {
        let stride = self.n_repos + 1;
        self.pairs.iter().enumerate().filter_map(move |(j, p)| {
            if !p.c.is_nan() && p.c.is_sign_negative() {
                Some((j % stride - 1, ItemId((j / stride) as u32), self.violation_started[j]))
            } else {
                None
            }
        })
    }

    /// Approximate owned size of the tracker state in bytes (hot and
    /// cold arrays + header) — snapshot telemetry only.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.source_value.len() * std::mem::size_of::<f64>()
            + self.pairs.len() * std::mem::size_of::<PairHot>()
            + (self.violation_started.len() + self.violation_total_us.len())
                * std::mem::size_of::<u64>()
    }

    /// Folds the tracker's complete state — every tolerance/sign bit
    /// pattern, repository copy, interval start and accumulated total —
    /// into `h`, for the snapshot `state_digest` equality gates.
    pub fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        h.write_usize(self.n_repos);
        h.write_usize(self.n_measured);
        h.write_u64(self.start_us);
        for &v in &self.source_value {
            h.write_f64(v);
        }
        for (j, p) in self.pairs.iter().enumerate() {
            h.write_f64(p.c);
            h.write_f64(p.repo_value);
            // Interval starts are only meaningful while the sign bit is
            // set; digest them gated so a closed slot's stale start
            // cannot split digests of behaviorally identical trackers.
            if p.c.is_sign_negative() {
                h.write_u64(self.violation_started[j]);
            }
            h.write_u64(self.violation_total_us[j]);
        }
    }

    /// Closes all open violation intervals at `end_us` (µs) and produces
    /// the report. The tracker may not be used afterwards.
    pub fn finish(mut self, end_us: u64) -> FidelityReport {
        assert!(end_us >= self.start_us, "end must not precede start");
        let duration_us = end_us - self.start_us;
        self.settle_open_intervals(end_us);
        let mut per_repo_loss = vec![0.0f64; self.n_repos];
        let mut per_repo_n = vec![0usize; self.n_repos];
        let mut pair_losses = Vec::with_capacity(self.n_measured);
        for (j, repo, item, coherency) in self.measured() {
            let loss = if duration_us > 0 {
                (self.violation_total_us[j] as f64 / duration_us as f64).clamp(0.0, 1.0) * 100.0
            } else {
                0.0
            };
            per_repo_loss[repo] += loss;
            per_repo_n[repo] += 1;
            pair_losses.push(PairLoss { repo, item, coherency, loss_pct: loss });
        }
        let repo_loss: Vec<f64> = per_repo_loss
            .iter()
            .zip(&per_repo_n)
            .map(|(&l, &n)| if n > 0 { l / n as f64 } else { 0.0 })
            .collect();
        let measured: Vec<f64> =
            repo_loss.iter().zip(&per_repo_n).filter(|(_, &n)| n > 0).map(|(&l, _)| l).collect();
        let overall = if measured.is_empty() {
            0.0
        } else {
            measured.iter().sum::<f64>() / measured.len() as f64
        };
        FidelityReport {
            loss_pct: overall,
            per_repo_loss_pct: repo_loss,
            pair_losses,
            duration_ms: duration_us as f64 / 1000.0,
        }
    }
}

/// Loss of one measured (repository, item) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairLoss {
    /// 0-based repository number.
    pub repo: usize,
    /// The measured item.
    pub item: ItemId,
    /// The tolerance it was measured against.
    pub coherency: Coherency,
    /// Percentage of the observation window spent out of tolerance.
    pub loss_pct: f64,
}

/// Aggregated fidelity results for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// System-wide loss of fidelity in percent (the paper's y-axis).
    pub loss_pct: f64,
    /// Mean loss per repository (index = 0-based repository number).
    pub per_repo_loss_pct: Vec<f64>,
    /// Every measured pair's loss.
    pub pair_losses: Vec<PairLoss>,
    /// Observation window length, ms.
    pub duration_ms: f64,
}

impl FidelityReport {
    /// System-wide fidelity in percent.
    pub fn fidelity_pct(&self) -> f64 {
        100.0 - self.loss_pct
    }

    /// The worst repository's loss.
    pub fn max_repo_loss_pct(&self) -> f64 {
        self.per_repo_loss_pct.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Coherency {
        Coherency::new(v)
    }

    fn one_pair(tol: f64) -> (Workload, FidelityTracker) {
        let w = Workload::from_needs(vec![vec![Some(c(tol))]]);
        let t = FidelityTracker::new(&w, &[1.0], 0);
        (w, t)
    }

    #[test]
    fn perfectly_coherent_run_has_zero_loss() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(100000, ItemId(0), 1.2);
        t.source_update(200000, ItemId(0), 1.4);
        let r = t.finish(1000000);
        assert_eq!(r.loss_pct, 0.0);
        assert_eq!(r.fidelity_pct(), 100.0);
    }

    #[test]
    fn violation_interval_measured_exactly() {
        let (_w, mut t) = one_pair(0.5);
        // Source jumps out of tolerance at t=100; repo catches up at t=350.
        t.source_update(100000, ItemId(0), 2.0);
        t.repo_update(350000, NodeIdx::repo(0), ItemId(0), 2.0);
        let r = t.finish(1000000);
        // 250ms of violation over 1000ms = 25% loss.
        assert!((r.loss_pct - 25.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn open_violation_charged_to_end() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(600000, ItemId(0), 2.0);
        let r = t.finish(1000000);
        assert!((r.loss_pct - 40.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn violation_toggles_accumulate() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(100000, ItemId(0), 2.0); // violate
        t.source_update(200000, ItemId(0), 1.2); // back in tolerance
        t.source_update(700000, ItemId(0), 3.0); // violate again
        t.repo_update(800000, NodeIdx::repo(0), ItemId(0), 3.0);
        let r = t.finish(1000000);
        assert!((r.loss_pct - 20.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn repo_update_for_unmeasured_item_is_ignored() {
        let w = Workload::from_needs(vec![vec![Some(c(0.5)), None]]);
        let mut t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        t.repo_update(10000, NodeIdx::repo(0), ItemId(1), 99.0);
        let r = t.finish(100000);
        assert_eq!(r.loss_pct, 0.0);
    }

    #[test]
    fn aggregation_means_items_then_repos() {
        // Repo0: two items, one violated 100% of the window, one clean
        // → repo0 loss 50%. Repo1: one clean item → 0%. System: 25%.
        let w = Workload::from_needs(vec![
            vec![Some(c(0.1)), Some(c(10.0))],
            vec![None, Some(c(10.0))],
        ]);
        let mut t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        t.source_update(0, ItemId(0), 5.0); // violates repo0/item0 forever
        let r = t.finish(1000000);
        assert!((r.per_repo_loss_pct[0] - 50.0).abs() < 1e-9);
        assert_eq!(r.per_repo_loss_pct[1], 0.0);
        assert!((r.loss_pct - 25.0).abs() < 1e-9);
        assert!((r.max_repo_loss_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pair_losses_enumerate_measured_pairs() {
        let w = Workload::from_needs(vec![vec![Some(c(0.1)), Some(c(0.2))]]);
        let t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        let r = t.finish(10000);
        assert_eq!(r.pair_losses.len(), 2);
        assert_eq!(r.pair_losses[0].item, ItemId(0));
        assert_eq!(r.pair_losses[1].coherency, c(0.2));
    }

    #[test]
    fn zero_duration_run_reports_zero_loss() {
        let (_w, t) = one_pair(0.5);
        let r = t.finish(0);
        assert_eq!(r.loss_pct, 0.0);
        assert_eq!(r.duration_ms, 0.0);
    }

    #[test]
    fn sink_reports_open_and_close_transitions() {
        let (_w, mut t) = one_pair(0.5);
        let mut log = Vec::new();
        let mut sink = |repo: usize, item: ItemId, opened: bool| log.push((repo, item, opened));
        t.source_update_sink(100, ItemId(0), 2.0, &mut sink); // opens
        t.source_update_sink(200, ItemId(0), 2.1, &mut sink); // still open: no event
        t.repo_update_sink(300, NodeIdx::repo(0), ItemId(0), 2.1, &mut sink); // closes
        assert_eq!(log, vec![(0, ItemId(0), true), (0, ItemId(0), false)]);
    }

    #[test]
    fn tightening_tolerance_opens_violation_at_the_mutation_instant() {
        let (_w, mut t) = one_pair(0.5);
        // Source drifts to 1.3: within ±0.5, no violation.
        t.source_update(100_000, ItemId(0), 1.3);
        let mut opened = Vec::new();
        let old = t.set_tolerance(400_000, 0, ItemId(0), c(0.1), &mut |r, i, o| {
            opened.push((r, i, o));
        });
        assert_eq!(old, Some(c(0.5)));
        assert_eq!(opened, vec![(0, ItemId(0), true)], "|1.3-1.0| > 0.1 must open at t=400ms");
        assert_eq!(t.tolerance_of(0, ItemId(0)), Some(c(0.1)));
        let r = t.finish(1_000_000);
        // Violation runs from the mutation instant to the end: 60%.
        assert!((r.loss_pct - 60.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn loosening_tolerance_closes_violation_at_the_mutation_instant() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(100_000, ItemId(0), 2.0); // opens (|2.0-1.0| > 0.5)
        let mut log = Vec::new();
        t.set_tolerance(300_000, 0, ItemId(0), c(5.0), &mut |r, i, o| log.push((r, i, o)));
        assert_eq!(log, vec![(0, ItemId(0), false)]);
        let r = t.finish(1_000_000);
        // Only the 100ms..300ms interval counts: 20%.
        assert!((r.loss_pct - 20.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn set_tolerance_on_unmeasured_pair_is_rejected() {
        let w = Workload::from_needs(vec![vec![Some(c(0.5)), None]]);
        let mut t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        let mut called = false;
        let old = t.set_tolerance(1000, 0, ItemId(1), c(0.1), &mut |_, _, _| called = true);
        assert_eq!(old, None);
        assert!(!called);
        assert_eq!(t.tolerance_of(0, ItemId(1)), None);
        assert_eq!(t.n_pairs(), 1);
    }
}
