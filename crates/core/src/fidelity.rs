//! The fidelity metric — §6.2 of the paper.
//!
//! Fidelity of a (repository, item) pair is the fraction of observation
//! time during which `|P(t) − S(t)| ≤ c`. Both `S` (source) and `P`
//! (repository copy) are piecewise-constant, so the deviation only changes
//! at source ticks and repository-arrival instants; the tracker does exact
//! interval accounting over those events.
//!
//! Times are **integer microseconds** end to end — the same currency the
//! discrete-event engine schedules in — so the accounting is exact integer
//! arithmetic until the final percentage division.
//!
//! Aggregation follows the paper: "The fidelity of a repository is the mean
//! fidelity over all data items stored at that repository, while the
//! overall fidelity of the system is the mean fidelity of all
//! repositories." Results are reported as **loss of fidelity** =
//! `100·(1 − fidelity)` percent.
//!
//! Only *user* needs are measured: items a repository carries purely to
//! relay to dependents (LeLA augmentation) do not contribute to its
//! fidelity, matching the paper's user-centric definition.

use serde::{Deserialize, Serialize};

use crate::coherency::Coherency;
use crate::item::ItemId;
use crate::overlay::NodeIdx;
use crate::workload::Workload;

/// Sentinel for "no open violation interval" (`u64::MAX` cannot start a
/// real interval: an event at the far end of time closes with length 0
/// either way).
const NOT_VIOLATING: u64 = u64::MAX;

/// One measured (repository, item) stream — 40 bytes, so a source tick's
/// scan over an item's pairs streams through contiguous cache lines.
#[derive(Debug, Clone)]
struct PairState {
    repo: u32,
    item: u32,
    c: Coherency,
    repo_value: f64,
    /// Start of the open violation interval, or [`NOT_VIOLATING`].
    violation_started: u64,
    violation_total_us: u64,
}

/// Exact interval-accounting fidelity tracker.
///
/// Layout is tuned for the engine's two hot calls: pairs are stored
/// **item-major and contiguous** (`item_start` offsets), so a source tick
/// walks one flat slice, and `pair_of` is a flat row-major `[repo][item]`
/// index, so an arrival is a single lookup with no pointer chasing.
#[derive(Debug, Clone)]
pub struct FidelityTracker {
    n_repos: usize,
    n_items: usize,
    /// Current source value per item.
    source_value: Vec<f64>,
    /// All measured pairs, grouped by item (repos ascending within each).
    pairs: Vec<PairState>,
    /// `pairs[item_start[i]..item_start[i + 1]]` are item `i`'s pairs.
    item_start: Vec<u32>,
    /// Flat `[repo][item]` → index into `pairs`, `u32::MAX` if unmeasured.
    pair_of: Vec<u32>,
    start_us: u64,
}

impl FidelityTracker {
    /// Starts tracking at time `start_us` (µs) with every repository
    /// coherent at `initial_values[item]`.
    pub fn new(workload: &Workload, initial_values: &[f64], start_us: u64) -> Self {
        assert_eq!(initial_values.len(), workload.n_items(), "one initial value per item");
        let n_items = workload.n_items();
        let n_repos = workload.n_repos();
        let mut pairs = Vec::new();
        let mut item_start = Vec::with_capacity(n_items + 1);
        let mut pair_of = vec![u32::MAX; n_repos * n_items];
        let needs: Vec<Vec<(ItemId, Coherency)>> =
            (0..n_repos).map(|r| workload.items_of(r).collect()).collect();
        item_start.push(0);
        for i in 0..n_items {
            for (repo, need) in needs.iter().enumerate() {
                // `items_of` yields ascending items; binary search keeps
                // construction O(items · repos · log items).
                if let Ok(k) = need.binary_search_by_key(&(i as u32), |(item, _)| item.0) {
                    pair_of[repo * n_items + i] = pairs.len() as u32;
                    pairs.push(PairState {
                        repo: repo as u32,
                        item: i as u32,
                        c: need[k].1,
                        repo_value: initial_values[i],
                        violation_started: NOT_VIOLATING,
                        violation_total_us: 0,
                    });
                }
            }
            item_start.push(pairs.len() as u32);
        }
        Self {
            n_repos,
            n_items,
            source_value: initial_values.to_vec(),
            pairs,
            item_start,
            pair_of,
            start_us,
        }
    }

    /// Records a new source value at time `at_us` (µs) and re-evaluates
    /// every measured pair on the item — one contiguous slice scan.
    pub fn source_update(&mut self, at_us: u64, item: ItemId, value: f64) {
        self.source_update_sink(at_us, item, value, &mut |_, _, _| {});
    }

    /// [`FidelityTracker::source_update`] that also reports every
    /// violation-interval transition to `sink` as
    /// `(repo, item, opened)` — `opened == true` when a violation interval
    /// starts at `at_us`, `false` when one closes. A no-op closure
    /// monomorphizes to exactly the unobserved scan.
    pub fn source_update_sink<F: FnMut(usize, ItemId, bool)>(
        &mut self,
        at_us: u64,
        item: ItemId,
        value: f64,
        sink: &mut F,
    ) {
        self.source_value[item.index()] = value;
        let lo = self.item_start[item.index()] as usize;
        let hi = self.item_start[item.index() + 1] as usize;
        for p in &mut self.pairs[lo..hi] {
            if let Some(opened) = Self::transition(p, at_us, value) {
                sink(p.repo as usize, ItemId(p.item), opened);
            }
        }
    }

    /// Records an update arriving at a repository at time `at_us` (µs).
    /// Arrivals for unmeasured (relay-only) items are ignored.
    pub fn repo_update(&mut self, at_us: u64, node: NodeIdx, item: ItemId, value: f64) {
        self.repo_update_sink(at_us, node, item, value, &mut |_, _, _| {});
    }

    /// [`FidelityTracker::repo_update`] with the same transition `sink` as
    /// [`FidelityTracker::source_update_sink`].
    pub fn repo_update_sink<F: FnMut(usize, ItemId, bool)>(
        &mut self,
        at_us: u64,
        node: NodeIdx,
        item: ItemId,
        value: f64,
        sink: &mut F,
    ) {
        assert!(!node.is_source(), "the source has no measured pairs");
        let repo = node.index() - 1;
        let idx = self.pair_of[repo * self.n_items + item.index()];
        if idx == u32::MAX {
            return;
        }
        let sv = self.source_value[item.index()];
        let p = &mut self.pairs[idx as usize];
        p.repo_value = value;
        if let Some(opened) = Self::transition(p, at_us, sv) {
            sink(repo, item, opened);
        }
    }

    /// Renegotiates the tolerance of one measured `(repo, item)` pair at
    /// time `at_us` (µs) — the incremental mutation entry point mid-run
    /// dynamics use. The pair's open-violation state is re-evaluated **at
    /// the mutation instant** against the current source and repository
    /// values: tightening may open an interval at exactly `at_us`,
    /// loosening may close one. Transitions are reported through `sink`
    /// like the update calls. Returns the tolerance previously in force,
    /// or `None` (and changes nothing) when the pair is not measured.
    pub fn set_tolerance<F: FnMut(usize, ItemId, bool)>(
        &mut self,
        at_us: u64,
        repo: usize,
        item: ItemId,
        c: Coherency,
        sink: &mut F,
    ) -> Option<Coherency> {
        let idx = self.pair_of[repo * self.n_items + item.index()];
        if idx == u32::MAX {
            return None;
        }
        let sv = self.source_value[item.index()];
        let p = &mut self.pairs[idx as usize];
        let old = p.c;
        p.c = c;
        if let Some(opened) = Self::transition(p, at_us, sv) {
            sink(repo, item, opened);
        }
        Some(old)
    }

    /// The tolerance currently in force for a measured pair (`None` when
    /// the repository does not measure the item).
    pub fn tolerance_of(&self, repo: usize, item: ItemId) -> Option<Coherency> {
        let idx = self.pair_of[repo * self.n_items + item.index()];
        if idx == u32::MAX {
            None
        } else {
            Some(self.pairs[idx as usize].c)
        }
    }

    /// Number of measured (repository, item) pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Applies the pair's violation-interval state machine at `at_us`.
    /// Returns `Some(true)` when a violation interval opens, `Some(false)`
    /// when one closes, `None` when the state is unchanged.
    #[inline]
    fn transition(p: &mut PairState, at_us: u64, source_value: f64) -> Option<bool> {
        let violating_now = p.c.violated_by(source_value, p.repo_value);
        if p.violation_started == NOT_VIOLATING {
            if violating_now {
                p.violation_started = at_us;
                return Some(true);
            }
        } else if !violating_now {
            p.violation_total_us += at_us - p.violation_started;
            p.violation_started = NOT_VIOLATING;
            return Some(false);
        }
        None
    }

    /// Closes all open violation intervals at `end_us` (µs) and produces
    /// the report. The tracker may not be used afterwards.
    pub fn finish(mut self, end_us: u64) -> FidelityReport {
        assert!(end_us >= self.start_us, "end must not precede start");
        let duration_us = end_us - self.start_us;
        for p in &mut self.pairs {
            if p.violation_started != NOT_VIOLATING {
                p.violation_total_us += end_us - p.violation_started;
                p.violation_started = NOT_VIOLATING;
            }
        }
        let mut per_repo_loss = vec![0.0f64; self.n_repos];
        let mut per_repo_n = vec![0usize; self.n_repos];
        let mut pair_losses = Vec::with_capacity(self.pairs.len());
        for p in &self.pairs {
            let loss = if duration_us > 0 {
                (p.violation_total_us as f64 / duration_us as f64).clamp(0.0, 1.0) * 100.0
            } else {
                0.0
            };
            per_repo_loss[p.repo as usize] += loss;
            per_repo_n[p.repo as usize] += 1;
            pair_losses.push(PairLoss {
                repo: p.repo as usize,
                item: ItemId(p.item),
                coherency: p.c,
                loss_pct: loss,
            });
        }
        let repo_loss: Vec<f64> = per_repo_loss
            .iter()
            .zip(&per_repo_n)
            .map(|(&l, &n)| if n > 0 { l / n as f64 } else { 0.0 })
            .collect();
        let measured: Vec<f64> =
            repo_loss.iter().zip(&per_repo_n).filter(|(_, &n)| n > 0).map(|(&l, _)| l).collect();
        let overall = if measured.is_empty() {
            0.0
        } else {
            measured.iter().sum::<f64>() / measured.len() as f64
        };
        FidelityReport {
            loss_pct: overall,
            per_repo_loss_pct: repo_loss,
            pair_losses,
            duration_ms: duration_us as f64 / 1000.0,
        }
    }
}

/// Loss of one measured (repository, item) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairLoss {
    /// 0-based repository number.
    pub repo: usize,
    /// The measured item.
    pub item: ItemId,
    /// The tolerance it was measured against.
    pub coherency: Coherency,
    /// Percentage of the observation window spent out of tolerance.
    pub loss_pct: f64,
}

/// Aggregated fidelity results for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// System-wide loss of fidelity in percent (the paper's y-axis).
    pub loss_pct: f64,
    /// Mean loss per repository (index = 0-based repository number).
    pub per_repo_loss_pct: Vec<f64>,
    /// Every measured pair's loss.
    pub pair_losses: Vec<PairLoss>,
    /// Observation window length, ms.
    pub duration_ms: f64,
}

impl FidelityReport {
    /// System-wide fidelity in percent.
    pub fn fidelity_pct(&self) -> f64 {
        100.0 - self.loss_pct
    }

    /// The worst repository's loss.
    pub fn max_repo_loss_pct(&self) -> f64 {
        self.per_repo_loss_pct.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Coherency {
        Coherency::new(v)
    }

    fn one_pair(tol: f64) -> (Workload, FidelityTracker) {
        let w = Workload::from_needs(vec![vec![Some(c(tol))]]);
        let t = FidelityTracker::new(&w, &[1.0], 0);
        (w, t)
    }

    #[test]
    fn perfectly_coherent_run_has_zero_loss() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(100000, ItemId(0), 1.2);
        t.source_update(200000, ItemId(0), 1.4);
        let r = t.finish(1000000);
        assert_eq!(r.loss_pct, 0.0);
        assert_eq!(r.fidelity_pct(), 100.0);
    }

    #[test]
    fn violation_interval_measured_exactly() {
        let (_w, mut t) = one_pair(0.5);
        // Source jumps out of tolerance at t=100; repo catches up at t=350.
        t.source_update(100000, ItemId(0), 2.0);
        t.repo_update(350000, NodeIdx::repo(0), ItemId(0), 2.0);
        let r = t.finish(1000000);
        // 250ms of violation over 1000ms = 25% loss.
        assert!((r.loss_pct - 25.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn open_violation_charged_to_end() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(600000, ItemId(0), 2.0);
        let r = t.finish(1000000);
        assert!((r.loss_pct - 40.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn violation_toggles_accumulate() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(100000, ItemId(0), 2.0); // violate
        t.source_update(200000, ItemId(0), 1.2); // back in tolerance
        t.source_update(700000, ItemId(0), 3.0); // violate again
        t.repo_update(800000, NodeIdx::repo(0), ItemId(0), 3.0);
        let r = t.finish(1000000);
        assert!((r.loss_pct - 20.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn repo_update_for_unmeasured_item_is_ignored() {
        let w = Workload::from_needs(vec![vec![Some(c(0.5)), None]]);
        let mut t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        t.repo_update(10000, NodeIdx::repo(0), ItemId(1), 99.0);
        let r = t.finish(100000);
        assert_eq!(r.loss_pct, 0.0);
    }

    #[test]
    fn aggregation_means_items_then_repos() {
        // Repo0: two items, one violated 100% of the window, one clean
        // → repo0 loss 50%. Repo1: one clean item → 0%. System: 25%.
        let w = Workload::from_needs(vec![
            vec![Some(c(0.1)), Some(c(10.0))],
            vec![None, Some(c(10.0))],
        ]);
        let mut t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        t.source_update(0, ItemId(0), 5.0); // violates repo0/item0 forever
        let r = t.finish(1000000);
        assert!((r.per_repo_loss_pct[0] - 50.0).abs() < 1e-9);
        assert_eq!(r.per_repo_loss_pct[1], 0.0);
        assert!((r.loss_pct - 25.0).abs() < 1e-9);
        assert!((r.max_repo_loss_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pair_losses_enumerate_measured_pairs() {
        let w = Workload::from_needs(vec![vec![Some(c(0.1)), Some(c(0.2))]]);
        let t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        let r = t.finish(10000);
        assert_eq!(r.pair_losses.len(), 2);
        assert_eq!(r.pair_losses[0].item, ItemId(0));
        assert_eq!(r.pair_losses[1].coherency, c(0.2));
    }

    #[test]
    fn zero_duration_run_reports_zero_loss() {
        let (_w, t) = one_pair(0.5);
        let r = t.finish(0);
        assert_eq!(r.loss_pct, 0.0);
        assert_eq!(r.duration_ms, 0.0);
    }

    #[test]
    fn sink_reports_open_and_close_transitions() {
        let (_w, mut t) = one_pair(0.5);
        let mut log = Vec::new();
        let mut sink = |repo: usize, item: ItemId, opened: bool| log.push((repo, item, opened));
        t.source_update_sink(100, ItemId(0), 2.0, &mut sink); // opens
        t.source_update_sink(200, ItemId(0), 2.1, &mut sink); // still open: no event
        t.repo_update_sink(300, NodeIdx::repo(0), ItemId(0), 2.1, &mut sink); // closes
        assert_eq!(log, vec![(0, ItemId(0), true), (0, ItemId(0), false)]);
    }

    #[test]
    fn tightening_tolerance_opens_violation_at_the_mutation_instant() {
        let (_w, mut t) = one_pair(0.5);
        // Source drifts to 1.3: within ±0.5, no violation.
        t.source_update(100_000, ItemId(0), 1.3);
        let mut opened = Vec::new();
        let old = t.set_tolerance(400_000, 0, ItemId(0), c(0.1), &mut |r, i, o| {
            opened.push((r, i, o));
        });
        assert_eq!(old, Some(c(0.5)));
        assert_eq!(opened, vec![(0, ItemId(0), true)], "|1.3-1.0| > 0.1 must open at t=400ms");
        assert_eq!(t.tolerance_of(0, ItemId(0)), Some(c(0.1)));
        let r = t.finish(1_000_000);
        // Violation runs from the mutation instant to the end: 60%.
        assert!((r.loss_pct - 60.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn loosening_tolerance_closes_violation_at_the_mutation_instant() {
        let (_w, mut t) = one_pair(0.5);
        t.source_update(100_000, ItemId(0), 2.0); // opens (|2.0-1.0| > 0.5)
        let mut log = Vec::new();
        t.set_tolerance(300_000, 0, ItemId(0), c(5.0), &mut |r, i, o| log.push((r, i, o)));
        assert_eq!(log, vec![(0, ItemId(0), false)]);
        let r = t.finish(1_000_000);
        // Only the 100ms..300ms interval counts: 20%.
        assert!((r.loss_pct - 20.0).abs() < 1e-9, "{}", r.loss_pct);
    }

    #[test]
    fn set_tolerance_on_unmeasured_pair_is_rejected() {
        let w = Workload::from_needs(vec![vec![Some(c(0.5)), None]]);
        let mut t = FidelityTracker::new(&w, &[1.0, 1.0], 0);
        let mut called = false;
        let old = t.set_tolerance(1000, 0, ItemId(1), c(0.1), &mut |_, _, _| called = true);
        assert_eq!(old, None);
        assert!(!called);
        assert_eq!(t.tolerance_of(0, ItemId(1)), None);
        assert_eq!(t.n_pairs(), 1);
    }
}
