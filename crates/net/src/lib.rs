//! # d3t-net — the simulated physical network
//!
//! The paper evaluates its dissemination trees on a randomly generated
//! physical network of routers and repositories: 700–2100 nodes, routing
//! tables computed with the Floyd–Warshall all-pairs-shortest-path
//! algorithm, node-to-node communication delays drawn from a heavy-tailed
//! Pareto distribution (minimum 2 ms), averaging 20–30 ms end to end over
//! ~10 hops. This crate rebuilds that substrate:
//!
//! * [`topology`] — connected random graphs (spanning tree + extra edges)
//!   with a CSR adjacency view ([`topology::Csr`]) for traversal;
//! * [`pareto`] — the bounded Pareto link-delay sampler;
//! * [`apsp`] — the overlay-targeted shortest-path engine
//!   ([`apsp::OverlayApsp`]: parallel per-source Dijkstra over CSR,
//!   computing only the rows the overlay queries), with Floyd–Warshall
//!   kept as the property-test oracle;
//! * [`partition`] — deterministic weighted partitioning over CSR
//!   (seeded BFS region growth + label-propagation refinement),
//!   the cut-minimizer behind the simulator's sharded engine;
//! * [`placement`] — choosing which nodes are the source, repositories,
//!   and routers;
//! * [`network`] — the assembled [`network::PhysicalNetwork`] facade the
//!   simulator queries for `delay(a, b)`.
//!
//! ```
//! use d3t_net::{NetworkConfig, PhysicalNetwork};
//!
//! let net = PhysicalNetwork::generate(&NetworkConfig::small(20, 4), 7);
//! let repos = net.repositories();
//! let d = net.delay_ms(net.source(), repos[0]);
//! assert!(d > 0.0);
//! ```

pub mod apsp;
pub mod network;
pub mod pareto;
pub mod partition;
pub mod placement;
pub mod topology;

pub use apsp::OverlayApsp;
pub use network::{NetworkConfig, PhysicalNetwork};
pub use pareto::Pareto;
pub use topology::{Csr, NodeId, Topology};
