//! Random connected network topologies.
//!
//! The paper's physical network "was randomly generated, consisting of
//! nodes (routers and repositories) and links". We build a connected
//! random graph the standard way: a uniform random spanning tree over all
//! nodes guarantees connectivity, then extra edges are sprinkled uniformly
//! at random until the requested average degree is reached. Link delays are
//! attached by the caller (see [`crate::network`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Index of a node in a [`Topology`].
pub type NodeId = usize;

/// An undirected link between two nodes, weighted by its propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Propagation + processing delay of this link, in milliseconds.
    pub delay_ms: f64,
}

/// An undirected graph of `n_nodes` nodes with delay-weighted links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    n_nodes: usize,
    links: Vec<Link>,
    /// Adjacency list: for each node, `(neighbor, link index)` pairs.
    adj: Vec<Vec<(NodeId, usize)>>,
}

impl Topology {
    /// Builds a topology from explicit links.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or non-positive delays.
    pub fn new(n_nodes: usize, links: Vec<Link>) -> Self {
        for l in &links {
            assert!(l.a < n_nodes && l.b < n_nodes, "link endpoint out of range");
            assert!(l.a != l.b, "self-loops are not allowed");
            assert!(l.delay_ms > 0.0 && l.delay_ms.is_finite(), "link delay must be positive");
        }
        let mut adj = vec![Vec::new(); n_nodes];
        for (i, l) in links.iter().enumerate() {
            adj[l.a].push((l.b, i));
            adj[l.b].push((l.a, i));
        }
        Self { n_nodes, links, adj }
    }

    /// Generates a connected random topology.
    ///
    /// * `n_nodes` — total node count (routers + repositories + source);
    /// * `avg_degree` — target average node degree (≥ 2.0 ensures the
    ///   spanning tree plus some redundancy, like real WAN graphs);
    /// * `delay_of` — called once per created link to assign its delay.
    ///
    /// The construction is: random-permutation spanning tree (each node
    /// after the first attaches to a uniformly random earlier node), then
    /// uniformly random extra edges (no duplicates, no self-loops) until
    /// `n_nodes * avg_degree / 2` links exist.
    pub fn random<F>(n_nodes: usize, avg_degree: f64, seed: u64, mut delay_of: F) -> Self
    where
        F: FnMut(&mut StdRng) -> f64,
    {
        assert!(n_nodes >= 2, "need at least two nodes");
        assert!(avg_degree >= 2.0, "average degree must be at least 2");
        let mut rng = StdRng::seed_from_u64(seed);

        // Random attachment order so that tree depth is O(log n) on average.
        let mut order: Vec<NodeId> = (0..n_nodes).collect();
        for i in (1..n_nodes).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }

        let target_links = ((n_nodes as f64 * avg_degree) / 2.0).round() as usize;
        let mut links = Vec::with_capacity(target_links.max(n_nodes - 1));
        let mut seen = std::collections::HashSet::with_capacity(target_links * 2);
        let key = |a: NodeId, b: NodeId| if a < b { (a, b) } else { (b, a) };

        for i in 1..n_nodes {
            let child = order[i];
            let parent = order[rng.gen_range(0..i)];
            seen.insert(key(child, parent));
            links.push(Link { a: child, b: parent, delay_ms: delay_of(&mut rng) });
        }
        let mut attempts = 0usize;
        while links.len() < target_links && attempts < target_links * 50 {
            attempts += 1;
            let a = rng.gen_range(0..n_nodes);
            let b = rng.gen_range(0..n_nodes);
            if a == b || seen.contains(&key(a, b)) {
                continue;
            }
            seen.insert(key(a, b));
            links.push(Link { a, b, delay_ms: delay_of(&mut rng) });
        }
        Self::new(n_nodes, links)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// `(neighbor, link index)` pairs for `node`.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, usize)] {
        &self.adj[node]
    }

    /// Average node degree.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.links.len() as f64 / self.n_nodes as f64
    }

    /// True if every node is reachable from node 0.
    pub fn is_connected(&self) -> bool {
        if self.n_nodes == 0 {
            return true;
        }
        let mut visited = vec![false; self.n_nodes];
        let mut stack = vec![0];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n_nodes
    }

    /// Builds a compressed-sparse-row view of the graph for cache-friendly
    /// traversal (the shortest-path hot loop).
    pub fn csr(&self) -> Csr {
        Csr::from_topology(self)
    }

    /// Multiplies every link delay by `factor` — used to sweep average
    /// communication delay while keeping the topology fixed (Figures 5
    /// and 7b of the paper).
    pub fn scale_delays(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        for l in &mut self.links {
            l.delay_ms *= factor;
        }
    }
}

/// Compressed-sparse-row adjacency: all neighbor lists in two flat arrays,
/// indexed by a per-node offset table. Traversing a node's neighborhood is
/// one contiguous scan instead of a pointer chase through per-node `Vec`s,
/// which is what the multi-source Dijkstra in [`crate::apsp`] spends its
/// time doing.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s slice of the arrays.
    offsets: Vec<u32>,
    /// Neighbor node ids, grouped by origin node.
    targets: Vec<u32>,
    /// Delay of the link to the corresponding target, ms.
    weights_ms: Vec<f64>,
}

impl Csr {
    /// Flattens a topology's adjacency lists (two entries per undirected
    /// link).
    pub fn from_topology(topo: &Topology) -> Self {
        let n = topo.n_nodes();
        assert!(n < u32::MAX as usize, "topology too large for u32 CSR indices");
        assert!(
            topo.links().len() * 2 < u32::MAX as usize,
            "topology has too many links for u32 CSR offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(topo.links().len() * 2);
        let mut weights_ms = Vec::with_capacity(topo.links().len() * 2);
        offsets.push(0u32);
        for u in 0..n {
            for &(v, li) in topo.neighbors(u) {
                targets.push(v as u32);
                weights_ms.push(topo.links()[li].delay_ms);
            }
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets, weights_ms }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (twice the link count).
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// `(neighbor, delay_ms)` pairs of `node`, as parallel slices.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> (&[u32], &[f64]) {
        let start = self.offsets[node] as usize;
        let end = self.offsets[node + 1] as usize;
        (&self.targets[start..end], &self.weights_ms[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_delay(_: &mut StdRng) -> f64 {
        1.0
    }

    #[test]
    fn random_topology_is_connected() {
        for seed in 0..5 {
            let t = Topology::random(200, 3.5, seed, fixed_delay);
            assert!(t.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn random_topology_hits_target_degree() {
        let t = Topology::random(500, 4.0, 1, fixed_delay);
        assert!((t.avg_degree() - 4.0).abs() < 0.3, "avg degree {}", t.avg_degree());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::random(100, 3.0, 9, fixed_delay);
        let b = Topology::random(100, 3.0, 9, fixed_delay);
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops_or_duplicate_links() {
        let t = Topology::random(150, 4.0, 3, fixed_delay);
        let mut seen = std::collections::HashSet::new();
        for l in t.links() {
            assert_ne!(l.a, l.b);
            let k = if l.a < l.b { (l.a, l.b) } else { (l.b, l.a) };
            assert!(seen.insert(k), "duplicate link {k:?}");
        }
    }

    #[test]
    fn scale_delays_multiplies_all() {
        let mut t = Topology::random(50, 3.0, 2, fixed_delay);
        t.scale_delays(2.5);
        for l in t.links() {
            assert!((l.delay_ms - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_links() {
        let _ = Topology::new(2, vec![Link { a: 0, b: 5, delay_ms: 1.0 }]);
    }

    #[test]
    fn two_node_graph_works() {
        let t = Topology::random(2, 2.0, 0, fixed_delay);
        assert!(t.is_connected());
        assert!(!t.links().is_empty());
    }

    #[test]
    fn csr_mirrors_adjacency_lists() {
        let t = Topology::random(120, 3.5, 21, |rng| rng.gen_range(1.0..9.0));
        let csr = t.csr();
        assert_eq!(csr.n_nodes(), t.n_nodes());
        assert_eq!(csr.n_edges(), t.links().len() * 2);
        for u in 0..t.n_nodes() {
            let (targets, weights) = csr.neighbors(u);
            let adj = t.neighbors(u);
            assert_eq!(targets.len(), adj.len());
            for ((&v, &w), &(av, ali)) in targets.iter().zip(weights).zip(adj) {
                assert_eq!(v as usize, av);
                assert_eq!(w, t.links()[ali].delay_ms);
            }
        }
    }
}
