//! Choosing which topology nodes play which role.
//!
//! The paper's base configuration is a 700-node network hosting 1 source,
//! 100 repositories and 600 routers, "with one of the nodes selected as the
//! source". We pick the source and repositories uniformly at random
//! (seeded), which matches that description; routers are the rest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::topology::NodeId;

/// Role assignment over a topology's nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The single origin of all data items.
    pub source: NodeId,
    /// Nodes acting as cooperating repositories.
    pub repositories: Vec<NodeId>,
    /// Pure forwarding nodes (play no role at the overlay level).
    pub routers: Vec<NodeId>,
}

impl Placement {
    /// Randomly assigns 1 source + `n_repositories` repositories among
    /// `n_nodes` nodes; everything else becomes a router.
    ///
    /// # Panics
    /// Panics if `n_repositories + 1 > n_nodes`.
    pub fn random(n_nodes: usize, n_repositories: usize, seed: u64) -> Self {
        assert!(
            n_repositories < n_nodes,
            "need at least {} nodes for 1 source + {} repositories",
            n_repositories + 1,
            n_repositories
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<NodeId> = (0..n_nodes).collect();
        // Partial Fisher-Yates: shuffle the first n_repositories+1 slots.
        for i in 0..=n_repositories {
            let j = rng.gen_range(i..n_nodes);
            ids.swap(i, j);
        }
        let source = ids[0];
        let mut repositories: Vec<NodeId> = ids[1..=n_repositories].to_vec();
        repositories.sort_unstable();
        let mut routers: Vec<NodeId> = ids[n_repositories + 1..].to_vec();
        routers.sort_unstable();
        Self { source, repositories, routers }
    }

    /// All overlay participants: the source followed by the repositories.
    pub fn overlay_nodes(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.repositories.len() + 1);
        v.push(self.source);
        v.extend_from_slice(&self.repositories);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_partition_the_nodes() {
        let p = Placement::random(700, 100, 3);
        assert_eq!(p.repositories.len(), 100);
        assert_eq!(p.routers.len(), 599);
        let mut all: Vec<NodeId> = p.overlay_nodes();
        all.extend_from_slice(&p.routers);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 700, "roles must not overlap");
    }

    #[test]
    fn placement_is_deterministic() {
        assert_eq!(Placement::random(100, 20, 7), Placement::random(100, 20, 7));
        assert_ne!(Placement::random(100, 20, 7), Placement::random(100, 20, 8));
    }

    #[test]
    fn all_nodes_can_be_overlay() {
        let p = Placement::random(5, 4, 1);
        assert!(p.routers.is_empty());
        assert_eq!(p.overlay_nodes().len(), 5);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn rejects_too_many_repositories() {
        let _ = Placement::random(5, 5, 0);
    }
}
