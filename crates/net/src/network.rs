//! The assembled physical network facade.
//!
//! [`PhysicalNetwork`] owns a random topology, a role placement, and a
//! dense matrix of shortest-path delays among the *overlay* nodes (source +
//! repositories) — which is all the dissemination layer ever queries.
//!
//! For the paper's base configuration (700 nodes / 100 repositories /
//! average degree 3) the resulting overlay has ~10 hops and 20–30 ms
//! average node-to-node delay, matching §6.1 of the paper. Delay sweeps
//! (Figures 5 and 7b) are done by uniformly scaling the matrix — shortest
//! paths are invariant under uniform scaling, so no recomputation is
//! needed.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::apsp::OverlayApsp;
use crate::pareto::Pareto;
use crate::placement::Placement;
use crate::topology::{NodeId, Topology};

/// Parameters for generating a [`PhysicalNetwork`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Total nodes: routers + repositories + the source.
    pub n_nodes: usize,
    /// How many nodes act as repositories.
    pub n_repositories: usize,
    /// Target average node degree of the random graph. The default of 3.0
    /// yields the ~10-hop average repository-to-repository paths the paper
    /// reports for its 700-node network.
    pub avg_degree: f64,
    /// Minimum per-link delay in milliseconds (paper: 2 ms).
    pub link_delay_min_ms: f64,
    /// Mean per-link delay in milliseconds. Uniform random graphs at
    /// average degree 3 have ~6-hop mean paths (`ln V / ln d̄`), so the
    /// default of 4.0 ms calibrates the overlay's mean end-to-end delay
    /// into the paper's stated 20–30 ms band.
    pub link_delay_mean_ms: f64,
    /// Cap on a single link's delay (keeps one pathological Pareto draw
    /// from dominating the topology).
    pub link_delay_cap_ms: f64,
}

impl Default for NetworkConfig {
    /// The paper's base case: 700 nodes = 1 source + 100 repositories +
    /// 599 routers.
    fn default() -> Self {
        Self {
            n_nodes: 700,
            n_repositories: 100,
            avg_degree: 3.0,
            link_delay_min_ms: 2.0,
            link_delay_mean_ms: 4.0,
            link_delay_cap_ms: 60.0,
        }
    }
}

impl NetworkConfig {
    /// Scaled-down configuration for tests and benches.
    pub fn small(n_nodes: usize, n_repositories: usize) -> Self {
        Self { n_nodes, n_repositories, ..Self::default() }
    }

    /// The paper's large configuration: 2100 nodes, 300 repositories
    /// (§6.3.5 scalability study).
    pub fn large() -> Self {
        Self { n_nodes: 2100, n_repositories: 300, ..Self::default() }
    }
}

/// A generated physical network with precomputed overlay delays.
#[derive(Debug, Clone)]
pub struct PhysicalNetwork {
    placement: Placement,
    /// Overlay node ids: `overlay[0]` is the source.
    overlay: Vec<NodeId>,
    /// Maps a topology node id to its index in `overlay` (usize::MAX when
    /// the node is a router).
    overlay_index: Vec<usize>,
    /// Dense `m × m` delay matrix among overlay nodes (ms).
    delay: Vec<f64>,
    /// Dense `m × m` hop matrix among overlay nodes.
    hops: Vec<u32>,
    /// Cumulative delay scale applied via [`Self::scale_delays`].
    delay_scale: f64,
    n_topology_nodes: usize,
}

impl PhysicalNetwork {
    /// Generates the topology, places roles, and computes overlay delays.
    ///
    /// Shortest paths from each overlay node are found with Dijkstra over
    /// link delays (equivalent to the paper's Floyd–Warshall routing tables
    /// but only materializing the rows the overlay needs).
    pub fn generate(cfg: &NetworkConfig, seed: u64) -> Self {
        let pareto = Pareto::with_mean(cfg.link_delay_min_ms, cfg.link_delay_mean_ms);
        let cap = cfg.link_delay_cap_ms;
        let topo = Topology::random(cfg.n_nodes, cfg.avg_degree, seed, |rng: &mut StdRng| {
            pareto.sample_capped(rng, cap)
        });
        let placement = Placement::random(cfg.n_nodes, cfg.n_repositories, seed.wrapping_add(1));
        Self::from_parts(&topo, placement)
    }

    /// Builds the overlay matrices from an explicit topology + placement
    /// (used by tests that need hand-crafted networks).
    ///
    /// Delegates to [`OverlayApsp`]: one Dijkstra per overlay node over a
    /// CSR view of the graph, fanned out across threads, instead of the
    /// paper's full `O(V³)` Floyd–Warshall routing tables.
    pub fn from_parts(topo: &Topology, placement: Placement) -> Self {
        assert!(topo.is_connected(), "physical network must be connected");
        let mut overlay_index = vec![usize::MAX; topo.n_nodes()];
        for (i, &node) in placement.overlay_nodes().iter().enumerate() {
            overlay_index[node] = i;
        }
        let apsp = OverlayApsp::compute(topo, &placement.overlay_nodes());
        let (overlay, delay, hops) = apsp.into_parts();
        Self {
            placement,
            overlay,
            overlay_index,
            delay,
            hops,
            delay_scale: 1.0,
            n_topology_nodes: topo.n_nodes(),
        }
    }

    /// The source node id.
    pub fn source(&self) -> NodeId {
        self.placement.source
    }

    /// Repository node ids (sorted).
    pub fn repositories(&self) -> &[NodeId] {
        &self.placement.repositories
    }

    /// Total nodes in the underlying topology.
    pub fn n_topology_nodes(&self) -> usize {
        self.n_topology_nodes
    }

    /// Shortest-path delay between two overlay nodes in milliseconds.
    ///
    /// # Panics
    /// Panics if either node is a router (not part of the overlay).
    pub fn delay_ms(&self, a: NodeId, b: NodeId) -> f64 {
        let m = self.overlay.len();
        self.delay[self.idx(a) * m + self.idx(b)]
    }

    /// Hop count of the shortest-delay path between two overlay nodes.
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> u32 {
        let m = self.overlay.len();
        self.hops[self.idx(a) * m + self.idx(b)]
    }

    fn idx(&self, node: NodeId) -> usize {
        let i = self.overlay_index.get(node).copied().unwrap_or(usize::MAX);
        assert!(i != usize::MAX, "node {node} is not an overlay node");
        i
    }

    /// Mean pairwise delay among all overlay nodes (ms) — the paper's
    /// "average node-node delay".
    pub fn mean_overlay_delay_ms(&self) -> f64 {
        let m = self.overlay.len();
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..m {
            for j in (i + 1)..m {
                sum += self.delay[i * m + j];
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Mean pairwise hop count among overlay nodes.
    pub fn mean_overlay_hops(&self) -> f64 {
        let m = self.overlay.len();
        let mut sum = 0u64;
        let mut count = 0usize;
        for i in 0..m {
            for j in (i + 1)..m {
                sum += self.hops[i * m + j] as u64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Uniformly scales every overlay delay by `factor`. Shortest paths are
    /// invariant under uniform scaling, so this is exact.
    pub fn scale_delays(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        for d in &mut self.delay {
            *d *= factor;
        }
        self.delay_scale *= factor;
    }

    /// Rescales delays so that [`Self::mean_overlay_delay_ms`] equals
    /// `target_ms` — how the communication-delay sweeps (Figures 5, 7b) set
    /// their x-axis. Returns the factor applied.
    pub fn scale_to_mean_delay(&mut self, target_ms: f64) -> f64 {
        assert!(target_ms > 0.0, "target delay must be positive");
        let current = self.mean_overlay_delay_ms();
        assert!(current > 0.0, "cannot rescale a zero-delay network");
        let factor = target_ms / current;
        self.scale_delays(factor);
        factor
    }

    /// Cumulative scale factor applied so far.
    pub fn delay_scale(&self) -> f64 {
        self.delay_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::Apsp;

    #[test]
    fn base_network_matches_paper_characteristics() {
        let net = PhysicalNetwork::generate(&NetworkConfig::default(), 42);
        let mean_hops = net.mean_overlay_hops();
        let mean_delay = net.mean_overlay_delay_ms();
        assert!(
            (5.0..=15.0).contains(&mean_hops),
            "expected ~10 hops like the paper, got {mean_hops}"
        );
        assert!(
            (15.0..=45.0).contains(&mean_delay),
            "expected 20-30ms like the paper, got {mean_delay}"
        );
    }

    #[test]
    fn overlay_delays_match_apsp() {
        let cfg = NetworkConfig::small(60, 10);
        let pareto = Pareto::with_mean(cfg.link_delay_min_ms, cfg.link_delay_mean_ms);
        let topo = Topology::random(cfg.n_nodes, cfg.avg_degree, 5, |rng: &mut StdRng| {
            pareto.sample_capped(rng, cfg.link_delay_cap_ms)
        });
        let placement = Placement::random(cfg.n_nodes, cfg.n_repositories, 6);
        let net = PhysicalNetwork::from_parts(&topo, placement);
        let apsp = Apsp::floyd_warshall(&topo);
        let overlay = net.placement.overlay_nodes();
        for &a in &overlay {
            for &b in &overlay {
                assert!(
                    (net.delay_ms(a, b) - apsp.delay_ms(a, b)).abs() < 1e-9,
                    "delay mismatch {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn delay_matrix_is_symmetric_zero_diagonal() {
        let net = PhysicalNetwork::generate(&NetworkConfig::small(80, 15), 3);
        let overlay = net.placement.overlay_nodes();
        for &a in &overlay {
            assert_eq!(net.delay_ms(a, a), 0.0);
            for &b in &overlay {
                assert!((net.delay_ms(a, b) - net.delay_ms(b, a)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scale_to_mean_delay_hits_target() {
        let mut net = PhysicalNetwork::generate(&NetworkConfig::small(100, 20), 9);
        let f = net.scale_to_mean_delay(75.0);
        assert!((net.mean_overlay_delay_ms() - 75.0).abs() < 1e-6);
        assert!(f > 0.0);
        assert!((net.delay_scale() - f).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PhysicalNetwork::generate(&NetworkConfig::small(50, 10), 4);
        let b = PhysicalNetwork::generate(&NetworkConfig::small(50, 10), 4);
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    #[should_panic(expected = "not an overlay node")]
    fn querying_router_delay_panics() {
        let net = PhysicalNetwork::generate(&NetworkConfig::small(50, 5), 4);
        let router = (0..50).find(|n| *n != net.source() && !net.repositories().contains(n));
        net.delay_ms(net.source(), router.unwrap());
    }
}
