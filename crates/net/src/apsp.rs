//! Shortest paths: the overlay-targeted engine and its Floyd–Warshall
//! oracle.
//!
//! The paper: "The routing tables of all the nodes are generated using an
//! all-pairs shortest path algorithm (by Floyd and Warshall)". The overlay
//! layer, however, only ever queries delays among the *overlay* nodes —
//! the source plus the repositories, ~100 of the 700–2100 physical nodes —
//! so materializing the full `V × V` matrix in `O(V³)` is wasted work.
//!
//! [`OverlayApsp`] computes exactly the `m × m` sub-matrix the overlay
//! needs by running one Dijkstra per overlay node over a CSR view of the
//! graph (`O(m · E log V)`), fanning the sources out over a rayon-style
//! thread pool. Results are bit-identical regardless of thread count: each
//! source's single-source problem is solved independently and written to
//! its own row.
//!
//! [`Apsp::floyd_warshall`] is kept as the independent oracle the property
//! tests compare against (and it remains the reference implementation of
//! the paper's routing construction).
//!
//! Tie-breaking: among equal-delay paths, [`OverlayApsp`] prefers fewer
//! hops (lexicographic `(delay, hops)` Dijkstra). Floyd–Warshall keeps the
//! first strictly-shorter path it encounters, so on graphs with exact
//! equal-delay alternatives its hop counts can exceed the overlay engine's;
//! with continuously distributed link delays the two agree.

use rayon::prelude::*;

use crate::topology::{Csr, NodeId, Topology};

/// Dense all-pairs shortest-path matrices (delay in ms and hop counts).
#[derive(Debug, Clone)]
pub struct Apsp {
    n: usize,
    /// Row-major `n × n` delay matrix; `f64::INFINITY` when unreachable.
    delay: Vec<f64>,
    /// Row-major `n × n` hop matrix; `u32::MAX` when unreachable.
    hops: Vec<u32>,
}

impl Apsp {
    /// Runs Floyd–Warshall on `topo` (O(n³); fine for the paper's 700–2100
    /// node networks, and computed once per experiment).
    pub fn floyd_warshall(topo: &Topology) -> Self {
        let n = topo.n_nodes();
        let mut delay = vec![f64::INFINITY; n * n];
        let mut hops = vec![u32::MAX; n * n];
        for i in 0..n {
            delay[i * n + i] = 0.0;
            hops[i * n + i] = 0;
        }
        for l in topo.links() {
            let (a, b) = (l.a, l.b);
            if l.delay_ms < delay[a * n + b] {
                delay[a * n + b] = l.delay_ms;
                delay[b * n + a] = l.delay_ms;
                hops[a * n + b] = 1;
                hops[b * n + a] = 1;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = delay[i * n + k];
                if dik.is_infinite() {
                    continue;
                }
                let hik = hops[i * n + k];
                // Manual row slices help the optimizer elide bounds checks.
                let (row_k_start, row_i_start) = (k * n, i * n);
                for j in 0..n {
                    let alt = dik + delay[row_k_start + j];
                    if alt < delay[row_i_start + j] {
                        delay[row_i_start + j] = alt;
                        hops[row_i_start + j] = hik + hops[row_k_start + j];
                    }
                }
            }
        }
        Self { n, delay, hops }
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Shortest-path delay between `a` and `b` in milliseconds
    /// (`f64::INFINITY` when disconnected).
    pub fn delay_ms(&self, a: NodeId, b: NodeId) -> f64 {
        self.delay[a * self.n + b]
    }

    /// Hop count along the shortest-delay path (`u32::MAX` when
    /// disconnected).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.hops[a * self.n + b]
    }

    /// Mean shortest-path delay over the given node pairs (each unordered
    /// pair counted once), used to report the network's "average node-node
    /// delay" and to normalize delay sweeps.
    pub fn mean_delay_among(&self, nodes: &[NodeId]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let d = self.delay_ms(a, b);
                if d.is_finite() {
                    sum += d;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Mean hop count over the given node pairs.
    pub fn mean_hops_among(&self, nodes: &[NodeId]) -> f64 {
        let mut sum = 0u64;
        let mut count = 0usize;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let h = self.hops(a, b);
                if h != u32::MAX {
                    sum += h as u64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// Shortest paths *among a set of overlay nodes*: the `m × m` delay and
/// hop matrices the dissemination layer actually queries, computed without
/// touching the other `V − m` rows of the full APSP problem.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayApsp {
    /// The overlay nodes, in the order rows/columns are indexed.
    nodes: Vec<NodeId>,
    /// Row-major `m × m` delay matrix (ms); `f64::INFINITY` if unreachable.
    delay: Vec<f64>,
    /// Row-major `m × m` hop matrix; `u32::MAX` if unreachable.
    hops: Vec<u32>,
}

impl OverlayApsp {
    /// Runs one `(delay, hops)`-lexicographic Dijkstra per overlay node
    /// over a CSR view of `topo`, in parallel, and gathers the overlay
    /// columns of each row.
    ///
    /// # Panics
    /// Panics if `overlay` contains an out-of-range node id.
    pub fn compute(topo: &Topology, overlay: &[NodeId]) -> Self {
        Self::compute_csr(&topo.csr(), overlay)
    }

    /// As [`Self::compute`], over a prebuilt CSR (callers that already
    /// hold one avoid rebuilding it per overlay set).
    pub fn compute_csr(csr: &Csr, overlay: &[NodeId]) -> Self {
        let n = csr.n_nodes();
        for &node in overlay {
            assert!(node < n, "overlay node {node} out of range");
        }
        let m = overlay.len();
        // One independent single-source problem per overlay node; the
        // parallel map keeps row order equal to `overlay` order, so the
        // result is identical to the serial loop.
        let rows: Vec<(Vec<f64>, Vec<u32>)> =
            overlay.par_iter().map(|&src| dijkstra_with_hops_csr(csr, src)).collect();
        let mut delay = vec![f64::INFINITY; m * m];
        let mut hops = vec![u32::MAX; m * m];
        for (i, (dist_row, hop_row)) in rows.iter().enumerate() {
            for (j, &dst) in overlay.iter().enumerate() {
                delay[i * m + j] = dist_row[dst];
                hops[i * m + j] = hop_row[dst];
            }
        }
        Self { nodes: overlay.to_vec(), delay, hops }
    }

    /// Number of overlay nodes covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the overlay set is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The overlay nodes, in row/column order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Delay between the `i`-th and `j`-th overlay nodes, ms.
    pub fn delay_ms_at(&self, i: usize, j: usize) -> f64 {
        self.delay[i * self.nodes.len() + j]
    }

    /// Hop count between the `i`-th and `j`-th overlay nodes.
    pub fn hops_at(&self, i: usize, j: usize) -> u32 {
        self.hops[i * self.nodes.len() + j]
    }

    /// Consumes the result into `(nodes, delay, hops)` flat matrices.
    pub fn into_parts(self) -> (Vec<NodeId>, Vec<f64>, Vec<u32>) {
        (self.nodes, self.delay, self.hops)
    }
}

/// Single-source Dijkstra over a CSR graph, minimizing `(delay, hops)`
/// lexicographically; ties beyond that break toward lower node ids, making
/// the scan order — and therefore the output — fully deterministic.
pub fn dijkstra_with_hops_csr(csr: &Csr, src: NodeId) -> (Vec<f64>, Vec<u32>) {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        hops: u32,
        node: u32,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap: reversed comparisons.
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.hops.cmp(&self.hops))
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = csr.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut hops = vec![u32::MAX; n];
    dist[src] = 0.0;
    hops[src] = 0;
    let mut heap = BinaryHeap::with_capacity(n / 4);
    heap.push(Entry { dist: 0.0, hops: 0, node: src as u32 });
    while let Some(Entry { dist: d, hops: h, node: u }) = heap.pop() {
        let u = u as usize;
        if d > dist[u] || (d == dist[u] && h > hops[u]) {
            continue;
        }
        let (targets, weights) = csr.neighbors(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let vu = v as usize;
            let alt = d + w;
            let alt_h = h + 1;
            if alt < dist[vu] || (alt == dist[vu] && alt_h < hops[vu]) {
                dist[vu] = alt;
                hops[vu] = alt_h;
                heap.push(Entry { dist: alt, hops: alt_h, node: v });
            }
        }
    }
    (dist, hops)
}

/// Single-source Dijkstra over link delays — the independent oracle used by
/// tests to validate Floyd–Warshall, and handy when only one row of the
/// matrix is needed.
pub fn dijkstra(topo: &Topology, src: NodeId) -> Vec<f64> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on dist; ties broken by node id for determinism.
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = topo.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry { dist: 0.0, node: src });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, li) in topo.neighbors(u) {
            let alt = d + topo.links()[li].delay_ms;
            if alt < dist[v] {
                dist[v] = alt;
                heap.push(Entry { dist: alt, node: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Link;

    fn line_graph(n: usize) -> Topology {
        let links = (0..n - 1).map(|i| Link { a: i, b: i + 1, delay_ms: (i + 1) as f64 }).collect();
        Topology::new(n, links)
    }

    #[test]
    fn line_graph_distances() {
        let topo = line_graph(5);
        let apsp = Apsp::floyd_warshall(&topo);
        // delay(0,4) = 1 + 2 + 3 + 4 = 10, hops = 4
        assert_eq!(apsp.delay_ms(0, 4), 10.0);
        assert_eq!(apsp.hops(0, 4), 4);
        assert_eq!(apsp.delay_ms(2, 2), 0.0);
        assert_eq!(apsp.hops(2, 2), 0);
    }

    #[test]
    fn shortcut_beats_long_path() {
        let topo = Topology::new(
            4,
            vec![
                Link { a: 0, b: 1, delay_ms: 1.0 },
                Link { a: 1, b: 2, delay_ms: 1.0 },
                Link { a: 2, b: 3, delay_ms: 1.0 },
                Link { a: 0, b: 3, delay_ms: 2.5 },
            ],
        );
        let apsp = Apsp::floyd_warshall(&topo);
        assert_eq!(apsp.delay_ms(0, 3), 2.5);
        assert_eq!(apsp.hops(0, 3), 1);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let topo = Topology::random(80, 3.5, 5, |rng| {
            use rand::Rng;
            rng.gen_range(1.0..20.0)
        });
        let apsp = Apsp::floyd_warshall(&topo);
        for src in [0usize, 17, 42] {
            let d = dijkstra(&topo, src);
            for (v, &dv) in d.iter().enumerate() {
                assert!(
                    (apsp.delay_ms(src, v) - dv).abs() < 1e-9,
                    "mismatch {src}->{v}: fw={} dij={dv}",
                    apsp.delay_ms(src, v),
                );
            }
        }
    }

    #[test]
    fn symmetry_and_triangle_inequality() {
        let topo = Topology::random(60, 3.0, 11, |_| 2.0);
        let apsp = Apsp::floyd_warshall(&topo);
        for a in 0..60 {
            for b in 0..60 {
                assert!((apsp.delay_ms(a, b) - apsp.delay_ms(b, a)).abs() < 1e-9);
                for c in 0..60 {
                    assert!(
                        apsp.delay_ms(a, b) <= apsp.delay_ms(a, c) + apsp.delay_ms(c, b) + 1e-9
                    );
                }
            }
        }
    }

    /// Property: on random topologies with continuously distributed link
    /// delays, the overlay-targeted engine reproduces the Floyd–Warshall
    /// oracle's delays *and* hop counts for every overlay pair.
    #[test]
    fn overlay_apsp_matches_floyd_warshall_oracle() {
        use rand::Rng;
        for seed in 0..8u64 {
            let n = 40 + (seed as usize * 17) % 80;
            let topo = Topology::random(n, 3.0 + (seed % 3) as f64 * 0.5, seed, |rng| {
                rng.gen_range(1.0..30.0)
            });
            // An arbitrary overlay subset, including node 0 as the "source".
            let overlay: Vec<NodeId> = (0..n).filter(|&v| v == 0 || v % 3 == 1).collect();
            let fw = Apsp::floyd_warshall(&topo);
            let ov = OverlayApsp::compute(&topo, &overlay);
            assert_eq!(ov.len(), overlay.len());
            for (i, &a) in overlay.iter().enumerate() {
                for (j, &b) in overlay.iter().enumerate() {
                    assert!(
                        (ov.delay_ms_at(i, j) - fw.delay_ms(a, b)).abs() < 1e-9,
                        "seed {seed}: delay mismatch {a}->{b}: overlay {} fw {}",
                        ov.delay_ms_at(i, j),
                        fw.delay_ms(a, b),
                    );
                    assert_eq!(
                        ov.hops_at(i, j),
                        fw.hops(a, b),
                        "seed {seed}: hop mismatch {a}->{b}",
                    );
                }
            }
        }
    }

    /// With quantized delays, equal-delay alternatives exist; the overlay
    /// engine must still agree on delay and never take *more* hops than
    /// the oracle (it minimizes hops among shortest paths; FW is
    /// arbitrary).
    #[test]
    fn overlay_apsp_on_tied_paths_takes_minimal_hops() {
        for seed in 0..4u64 {
            let topo = Topology::random(70, 4.0, seed, |_| 5.0);
            let overlay: Vec<NodeId> = (0..70).step_by(5).collect();
            let fw = Apsp::floyd_warshall(&topo);
            let ov = OverlayApsp::compute(&topo, &overlay);
            for (i, &a) in overlay.iter().enumerate() {
                for (j, &b) in overlay.iter().enumerate() {
                    assert!((ov.delay_ms_at(i, j) - fw.delay_ms(a, b)).abs() < 1e-9);
                    assert!(
                        ov.hops_at(i, j) <= fw.hops(a, b),
                        "seed {seed}: overlay took {} hops, oracle {}",
                        ov.hops_at(i, j),
                        fw.hops(a, b),
                    );
                }
            }
        }
    }

    /// The parallel fan-out must be invisible: any forced pool width
    /// produces the same matrices as the default pool. (Each source's row
    /// is computed independently, so this holds by construction; the test
    /// pins it.)
    #[test]
    fn overlay_apsp_is_thread_count_invariant() {
        let topo = Topology::random(90, 3.5, 13, |rng| {
            use rand::Rng;
            rng.gen_range(2.0..40.0)
        });
        let overlay: Vec<NodeId> = (0..90).step_by(4).collect();
        let baseline = OverlayApsp::compute(&topo, &overlay);
        for width in [1usize, 2, 7] {
            let pinned = rayon::with_num_threads(width, || OverlayApsp::compute(&topo, &overlay));
            assert_eq!(baseline, pinned, "width {width} diverged");
        }
    }

    #[test]
    fn mean_delay_and_hops() {
        let topo = line_graph(4); // delays 1,2,3
        let apsp = Apsp::floyd_warshall(&topo);
        let nodes = [0, 1, 2, 3];
        // pairs: (0,1)=1 (0,2)=3 (0,3)=6 (1,2)=2 (1,3)=5 (2,3)=3 → mean 20/6
        assert!((apsp.mean_delay_among(&nodes) - 20.0 / 6.0).abs() < 1e-9);
        // hops: 1,2,3,1,2,1 → mean 10/6
        assert!((apsp.mean_hops_among(&nodes) - 10.0 / 6.0).abs() < 1e-9);
    }
}
