//! All-pairs shortest paths.
//!
//! The paper: "The routing tables of all the nodes are generated using an
//! all-pairs shortest path algorithm (by Floyd and Warshall)". We do the
//! same, shortest by total link delay, and additionally record the hop
//! count along each shortest path so experiments can report the ~10-hop
//! average the paper quotes. A Dijkstra implementation is kept alongside as
//! an independent oracle for the property tests.

use crate::topology::{NodeId, Topology};

/// Dense all-pairs shortest-path matrices (delay in ms and hop counts).
#[derive(Debug, Clone)]
pub struct Apsp {
    n: usize,
    /// Row-major `n × n` delay matrix; `f64::INFINITY` when unreachable.
    delay: Vec<f64>,
    /// Row-major `n × n` hop matrix; `u32::MAX` when unreachable.
    hops: Vec<u32>,
}

impl Apsp {
    /// Runs Floyd–Warshall on `topo` (O(n³); fine for the paper's 700–2100
    /// node networks, and computed once per experiment).
    pub fn floyd_warshall(topo: &Topology) -> Self {
        let n = topo.n_nodes();
        let mut delay = vec![f64::INFINITY; n * n];
        let mut hops = vec![u32::MAX; n * n];
        for i in 0..n {
            delay[i * n + i] = 0.0;
            hops[i * n + i] = 0;
        }
        for l in topo.links() {
            let (a, b) = (l.a, l.b);
            if l.delay_ms < delay[a * n + b] {
                delay[a * n + b] = l.delay_ms;
                delay[b * n + a] = l.delay_ms;
                hops[a * n + b] = 1;
                hops[b * n + a] = 1;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = delay[i * n + k];
                if dik.is_infinite() {
                    continue;
                }
                let hik = hops[i * n + k];
                // Manual row slices help the optimizer elide bounds checks.
                let (row_k_start, row_i_start) = (k * n, i * n);
                for j in 0..n {
                    let alt = dik + delay[row_k_start + j];
                    if alt < delay[row_i_start + j] {
                        delay[row_i_start + j] = alt;
                        hops[row_i_start + j] = hik + hops[row_k_start + j];
                    }
                }
            }
        }
        Self { n, delay, hops }
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Shortest-path delay between `a` and `b` in milliseconds
    /// (`f64::INFINITY` when disconnected).
    pub fn delay_ms(&self, a: NodeId, b: NodeId) -> f64 {
        self.delay[a * self.n + b]
    }

    /// Hop count along the shortest-delay path (`u32::MAX` when
    /// disconnected).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.hops[a * self.n + b]
    }

    /// Mean shortest-path delay over the given node pairs (each unordered
    /// pair counted once), used to report the network's "average node-node
    /// delay" and to normalize delay sweeps.
    pub fn mean_delay_among(&self, nodes: &[NodeId]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let d = self.delay_ms(a, b);
                if d.is_finite() {
                    sum += d;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Mean hop count over the given node pairs.
    pub fn mean_hops_among(&self, nodes: &[NodeId]) -> f64 {
        let mut sum = 0u64;
        let mut count = 0usize;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let h = self.hops(a, b);
                if h != u32::MAX {
                    sum += h as u64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// Single-source Dijkstra over link delays — the independent oracle used by
/// tests to validate Floyd–Warshall, and handy when only one row of the
/// matrix is needed.
pub fn dijkstra(topo: &Topology, src: NodeId) -> Vec<f64> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on dist; ties broken by node id for determinism.
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = topo.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry { dist: 0.0, node: src });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, li) in topo.neighbors(u) {
            let alt = d + topo.links()[li].delay_ms;
            if alt < dist[v] {
                dist[v] = alt;
                heap.push(Entry { dist: alt, node: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Link;

    fn line_graph(n: usize) -> Topology {
        let links = (0..n - 1)
            .map(|i| Link { a: i, b: i + 1, delay_ms: (i + 1) as f64 })
            .collect();
        Topology::new(n, links)
    }

    #[test]
    fn line_graph_distances() {
        let topo = line_graph(5);
        let apsp = Apsp::floyd_warshall(&topo);
        // delay(0,4) = 1 + 2 + 3 + 4 = 10, hops = 4
        assert_eq!(apsp.delay_ms(0, 4), 10.0);
        assert_eq!(apsp.hops(0, 4), 4);
        assert_eq!(apsp.delay_ms(2, 2), 0.0);
        assert_eq!(apsp.hops(2, 2), 0);
    }

    #[test]
    fn shortcut_beats_long_path() {
        let topo = Topology::new(
            4,
            vec![
                Link { a: 0, b: 1, delay_ms: 1.0 },
                Link { a: 1, b: 2, delay_ms: 1.0 },
                Link { a: 2, b: 3, delay_ms: 1.0 },
                Link { a: 0, b: 3, delay_ms: 2.5 },
            ],
        );
        let apsp = Apsp::floyd_warshall(&topo);
        assert_eq!(apsp.delay_ms(0, 3), 2.5);
        assert_eq!(apsp.hops(0, 3), 1);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let topo = Topology::random(80, 3.5, 5, |rng| {
            use rand::Rng;
            rng.gen_range(1.0..20.0)
        });
        let apsp = Apsp::floyd_warshall(&topo);
        for src in [0usize, 17, 42] {
            let d = dijkstra(&topo, src);
            for (v, &dv) in d.iter().enumerate() {
                assert!(
                    (apsp.delay_ms(src, v) - dv).abs() < 1e-9,
                    "mismatch {src}->{v}: fw={} dij={dv}",
                    apsp.delay_ms(src, v),
                );
            }
        }
    }

    #[test]
    fn symmetry_and_triangle_inequality() {
        let topo = Topology::random(60, 3.0, 11, |_| 2.0);
        let apsp = Apsp::floyd_warshall(&topo);
        for a in 0..60 {
            for b in 0..60 {
                assert!((apsp.delay_ms(a, b) - apsp.delay_ms(b, a)).abs() < 1e-9);
                for c in 0..60 {
                    assert!(
                        apsp.delay_ms(a, b) <= apsp.delay_ms(a, c) + apsp.delay_ms(c, b) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn mean_delay_and_hops() {
        let topo = line_graph(4); // delays 1,2,3
        let apsp = Apsp::floyd_warshall(&topo);
        let nodes = [0, 1, 2, 3];
        // pairs: (0,1)=1 (0,2)=3 (0,3)=6 (1,2)=2 (1,3)=5 (2,3)=3 → mean 20/6
        assert!((apsp.mean_delay_among(&nodes) - 20.0 / 6.0).abs() < 1e-9);
        // hops: 1,2,3,1,2,1 → mean 10/6
        assert!((apsp.mean_hops_among(&nodes) - 10.0 / 6.0).abs() < 1e-9);
    }
}
