//! Heavy-tailed Pareto sampler for link delays.
//!
//! The paper draws node-to-node communication delays from a Pareto
//! distribution with a minimum delay of 2 ms and a mean parameter of 15 ms.
//! A (type-I) Pareto with scale `x_m` (the minimum) and shape `alpha > 1`
//! has mean `alpha * x_m / (alpha - 1)`; we expose both the direct
//! `(x_m, alpha)` parameterization and the paper-style `(min, mean)` one.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Type-I Pareto distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Scale parameter: the minimum value the sampler can produce.
    pub x_m: f64,
    /// Shape parameter; larger means lighter tail. Must exceed 1 for the
    /// mean to exist.
    pub alpha: f64,
}

impl Pareto {
    /// Direct parameterization.
    ///
    /// # Panics
    /// Panics if `x_m <= 0` or `alpha <= 0`.
    pub fn new(x_m: f64, alpha: f64) -> Self {
        assert!(x_m > 0.0 && x_m.is_finite(), "x_m must be positive");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        Self { x_m, alpha }
    }

    /// Paper-style parameterization: minimum value and target mean.
    /// Solves `mean = alpha * x_m / (alpha - 1)` for `alpha`.
    ///
    /// # Panics
    /// Panics unless `mean > min > 0`.
    pub fn with_mean(min: f64, mean: f64) -> Self {
        assert!(min > 0.0, "min must be positive");
        assert!(mean > min, "mean must exceed min for a Pareto distribution");
        let alpha = mean / (mean - min);
        Self::new(min, alpha)
    }

    /// The distribution mean (infinite when `alpha <= 1`).
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_m / (self.alpha - 1.0)
        }
    }

    /// Draws one sample by inverse-transform: `x_m / U^(1/alpha)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() yields [0,1); complement avoids division by zero.
        let u = 1.0 - rng.gen::<f64>();
        self.x_m / u.powf(1.0 / self.alpha)
    }

    /// Draws a sample truncated at `cap` — used to keep single pathological
    /// links from dominating a topology while preserving the heavy tail.
    pub fn sample_capped<R: Rng + ?Sized>(&self, rng: &mut R, cap: f64) -> f64 {
        self.sample(rng).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_minimum() {
        let p = Pareto::with_mean(2.0, 15.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn with_mean_solves_alpha() {
        let p = Pareto::with_mean(2.0, 15.0);
        assert!((p.mean() - 15.0).abs() < 1e-9);
        assert!((p.alpha - 15.0 / 13.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_mean_tracks_analytic_mean_for_light_tail() {
        // alpha = 5 has finite variance, so the sample mean converges fast.
        let p = Pareto::new(2.0, 5.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        assert!((emp - p.mean()).abs() / p.mean() < 0.02, "emp {emp} vs {}", p.mean());
    }

    #[test]
    fn capped_samples_bounded() {
        let p = Pareto::with_mean(2.0, 15.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = p.sample_capped(&mut rng, 100.0);
            assert!((2.0..=100.0).contains(&s));
        }
    }

    #[test]
    fn heavy_tail_produces_outliers() {
        let p = Pareto::with_mean(2.0, 15.0);
        let mut rng = StdRng::seed_from_u64(4);
        let big = (0..50_000).map(|_| p.sample(&mut rng)).filter(|&s| s > 100.0).count();
        assert!(big > 0, "heavy tail should produce >100ms samples");
    }

    #[test]
    #[should_panic(expected = "mean must exceed min")]
    fn rejects_mean_below_min() {
        let _ = Pareto::with_mean(5.0, 2.0);
    }

    /// Identically seeded samplers must emit bit-equal sequences — the
    /// property the simulator's degraded-link delay inflation leans on
    /// for cross-backend determinism of faulted runs.
    #[test]
    fn identically_seeded_samplers_are_bit_equal() {
        let p = Pareto::with_mean(5.0, 25.0);
        let mut a = StdRng::seed_from_u64(0xFA17);
        let mut b = StdRng::seed_from_u64(0xFA17);
        for i in 0..10_000 {
            let (sa, sb) = (p.sample(&mut a), p.sample(&mut b));
            assert_eq!(sa.to_bits(), sb.to_bits(), "draw {i}: {sa} != {sb}");
        }
        // Different seeds diverge immediately on a continuous sampler.
        let mut c = StdRng::seed_from_u64(0xFA18);
        assert_ne!(p.sample(&mut a).to_bits(), p.sample(&mut c).to_bits());
    }

    /// The sampler draws exactly one `f64` per sample, so interleaving
    /// with other consumers of the same RNG is position-independent:
    /// sample k of a run depends only on the seed and the number of
    /// draws before it — the accounting the fault model's single-RNG
    /// discipline relies on.
    #[test]
    fn sampler_consumes_exactly_one_draw_per_sample() {
        let p = Pareto::with_mean(2.0, 15.0);
        let expected: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(77);
            (0..20).map(|_| p.sample(&mut r).to_bits()).collect()
        };
        for (i, &want) in expected.iter().enumerate() {
            // Burning i raw draws and then sampling must land exactly on
            // the i-th sample of the uninterrupted stream.
            let mut r = StdRng::seed_from_u64(77);
            for _ in 0..i {
                let _ = r.gen::<f64>();
            }
            assert_eq!(p.sample(&mut r).to_bits(), want, "sample {i} is one draw deep");
        }
    }
}
