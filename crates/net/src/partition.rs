//! Deterministic weighted graph partitioning over CSR adjacency.
//!
//! The sharded engine splits the dissemination overlay into per-core
//! regions; what it wants minimized is the total weight of **cut
//! edges** — each cut edge is a parent/child pair whose deliveries must
//! cross shards every epoch, weighted by how chatty the pair is (the
//! simulator weights an edge by its coherency tolerance: tight
//! tolerances forward nearly every tick). This module provides a small,
//! fully deterministic two-phase heuristic in the Kernighan–Lin /
//! label-propagation family:
//!
//! 1. **Seeded multi-source BFS growth** — `n_parts` seed vertices are
//!    drawn from the caller's seed, then regions grow breadth-first in
//!    strict round-robin part order under a balance cap (total vertex
//!    weight × 1.1 / `n_parts`), grabbing the lowest-index unassigned
//!    vertex when a frontier runs dry (disconnected graphs and
//!    exhausted regions stay covered).
//! 2. **Label-propagation refinement** — a fixed number of sweeps in
//!    vertex-index order; a vertex moves to the part holding the
//!    strictly largest share of its incident edge weight when the move
//!    respects the balance cap and does not empty its current part.
//!    Ties prefer the lowest part id.
//!
//! Everything is plain index arithmetic over `Vec`s — no hash maps, no
//! wall clock, no entropy: the result is a pure function of
//! `(graph, n_parts, seed)`, which is what lets N-shard runs replay
//! bit-identically (the partition *is* part of the run's identity).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for "not yet assigned".
const UNASSIGNED: u32 = u32::MAX;

/// Refinement sweeps. Fixed (not convergence-driven) so the work — and
/// therefore the result — is a closed-form function of the input.
const REFINE_SWEEPS: usize = 4;

/// Partitions the CSR graph `(xadj, adjncy, adjwgt)` with vertex
/// weights `vwgt` into `n_parts` balanced regions, minimizing the
/// weight of cut edges heuristically. Returns one part id per vertex,
/// each `< n_parts` (all zeros when `n_parts <= 1`).
///
/// `xadj.len()` is `n + 1`; vertex `v`'s neighbors are
/// `adjncy[xadj[v]..xadj[v + 1]]` with parallel edge weights in
/// `adjwgt`. The graph should be symmetric (undirected); the balance
/// cap is `ceil(total_vwgt * 1.1 / n_parts)`.
///
/// Deterministic: same `(graph, n_parts, seed)` ⇒ same output, on any
/// host or thread count.
pub fn partition(
    xadj: &[u32],
    adjncy: &[u32],
    adjwgt: &[u64],
    vwgt: &[u64],
    n_parts: usize,
    seed: u64,
) -> Vec<u32> {
    let n = xadj.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }
    debug_assert_eq!(vwgt.len(), n);
    debug_assert_eq!(adjncy.len(), adjwgt.len());
    if n_parts <= 1 || n_parts >= n {
        // Degenerate shapes: everything in part 0, or one vertex per
        // part (ids past `n` stay empty — callers cap `n_parts` at the
        // vertex count for anything useful).
        return if n_parts <= 1 { vec![0; n] } else { (0..n as u32).collect() };
    }

    let total: u64 = vwgt.iter().sum();
    // ~10% headroom over the perfect split, rounded up; at least the
    // heaviest single vertex so every vertex is placeable somewhere.
    let cap =
        (total * 11).div_ceil(10 * n_parts as u64).max(vwgt.iter().copied().max().unwrap_or(1));

    let mut part = vec![UNASSIGNED; n];
    let mut load = vec![0u64; n_parts];
    let mut count = vec![0usize; n_parts];
    let mut frontier: Vec<VecDeque<u32>> = (0..n_parts).map(|_| VecDeque::new()).collect();
    let mut assigned = 0usize;
    let mut scan = 0usize; // lowest possibly-unassigned vertex

    let assign = |v: usize,
                  p: usize,
                  part: &mut [u32],
                  load: &mut [u64],
                  count: &mut [usize],
                  frontier: &mut [VecDeque<u32>],
                  assigned: &mut usize| {
        part[v] = p as u32;
        load[p] += vwgt[v];
        count[p] += 1;
        *assigned += 1;
        for &w in &adjncy[xadj[v] as usize..xadj[v + 1] as usize] {
            frontier[p].push_back(w);
        }
    };

    // Phase 1a: seed one region per part from the run's seed. A draw
    // landing on an assigned vertex walks forward (wrapping) to the
    // next free one, so seeds are always distinct.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD3_7A57_1710 ^ (n_parts as u64) << 32);
    for p in 0..n_parts {
        let mut v = rng.gen_range(0..n);
        while part[v] != UNASSIGNED {
            v = (v + 1) % n;
        }
        assign(v, p, &mut part, &mut load, &mut count, &mut frontier, &mut assigned);
    }

    // Phase 1b: round-robin BFS growth under the cap.
    while assigned < n {
        let mut progressed = false;
        for p in 0..n_parts {
            if load[p] >= cap {
                continue;
            }
            // Pop the frontier past already-claimed vertices.
            let mut next = None;
            while let Some(v) = frontier[p].pop_front() {
                if part[v as usize] == UNASSIGNED {
                    next = Some(v as usize);
                    break;
                }
            }
            // A dry frontier seeds a fresh region at the lowest
            // unassigned vertex (disconnected component, or the region
            // is walled in by other parts).
            let v = match next {
                Some(v) => v,
                None => {
                    while scan < n && part[scan] != UNASSIGNED {
                        scan += 1;
                    }
                    if scan >= n {
                        continue;
                    }
                    scan
                }
            };
            assign(v, p, &mut part, &mut load, &mut count, &mut frontier, &mut assigned);
            progressed = true;
        }
        if !progressed {
            // Every part is at cap with vertices left over (heavy-tailed
            // vwgt): place the lowest unassigned vertex in the lightest
            // part (ties → lowest id) and keep going.
            while scan < n && part[scan] != UNASSIGNED {
                scan += 1;
            }
            if scan >= n {
                break;
            }
            let mut p = 0usize;
            for q in 1..n_parts {
                if load[q] < load[p] {
                    p = q;
                }
            }
            assign(scan, p, &mut part, &mut load, &mut count, &mut frontier, &mut assigned);
        }
    }

    // Phase 2: label-propagation sweeps in vertex order. `conn` is
    // reused across vertices via a generation stamp (no per-vertex
    // clear of the whole array).
    let mut conn = vec![0u64; n_parts];
    let mut stamp = vec![0u32; n_parts];
    let mut generation = 0u32;
    for _ in 0..REFINE_SWEEPS {
        let mut moved = false;
        for v in 0..n {
            generation += 1;
            for e in xadj[v] as usize..xadj[v + 1] as usize {
                let p = part[adjncy[e] as usize] as usize;
                if stamp[p] != generation {
                    stamp[p] = generation;
                    conn[p] = 0;
                }
                conn[p] += adjwgt[e];
            }
            let cur = part[v] as usize;
            if count[cur] <= 1 {
                continue; // never empty a part
            }
            let here = if stamp[cur] == generation { conn[cur] } else { 0 };
            let mut best = cur;
            let mut best_w = here;
            for p in 0..n_parts {
                if p != cur
                    && stamp[p] == generation
                    && conn[p] > best_w
                    && load[p] + vwgt[v] <= cap
                {
                    best = p;
                    best_w = conn[p];
                }
            }
            if best != cur {
                load[cur] -= vwgt[v];
                count[cur] -= 1;
                load[best] += vwgt[v];
                count[best] += 1;
                part[v] = best as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    part
}

/// Total weight of edges whose endpoints land in different parts
/// (each undirected edge counted once per direction present in the
/// CSR). The quantity phase 2 descends on; exposed for diagnostics and
/// tests.
pub fn cut_weight(xadj: &[u32], adjncy: &[u32], adjwgt: &[u64], part: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..part.len() {
        for e in xadj[v] as usize..xadj[v + 1] as usize {
            if part[adjncy[e] as usize] != part[v] {
                cut += adjwgt[e];
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected random graph (ring + chords) in CSR form, with
    /// seeded weights.
    fn random_graph(n: usize, extra: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 0..n as u32 {
            edges.push((v, (v + 1) % n as u32, rng.gen_range(1..1000u64)));
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a != b {
                edges.push((a, b, rng.gen_range(1..1000u64)));
            }
        }
        let mut deg = vec![0u32; n];
        for &(a, b, _) in &edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = vec![0u32; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        let mut adjncy = vec![0u32; xadj[n] as usize];
        let mut adjwgt = vec![0u64; xadj[n] as usize];
        for &(a, b, w) in &edges {
            for (x, y) in [(a, b), (b, a)] {
                adjncy[cursor[x as usize] as usize] = y;
                adjwgt[cursor[x as usize] as usize] = w;
                cursor[x as usize] += 1;
            }
        }
        let vwgt: Vec<u64> = (0..n).map(|_| rng.gen_range(1..20u64)).collect();
        (xadj, adjncy, adjwgt, vwgt)
    }

    #[test]
    fn one_part_is_all_zeros_and_empty_graph_is_empty() {
        let (xadj, adjncy, adjwgt, vwgt) = random_graph(40, 30, 7);
        assert_eq!(partition(&xadj, &adjncy, &adjwgt, &vwgt, 1, 99), vec![0; 40]);
        assert_eq!(partition(&[0], &[], &[], &[], 4, 99), Vec::<u32>::new());
    }

    #[test]
    fn same_seed_same_partition_different_seed_allowed_to_differ() {
        for graph_seed in [1u64, 42, 1234] {
            let (xadj, adjncy, adjwgt, vwgt) = random_graph(200, 150, graph_seed);
            for parts in [2usize, 3, 4, 8] {
                let a = partition(&xadj, &adjncy, &adjwgt, &vwgt, parts, 5);
                let b = partition(&xadj, &adjncy, &adjwgt, &vwgt, parts, 5);
                assert_eq!(a, b, "partition must be a pure function of (graph, parts, seed)");
            }
        }
    }

    #[test]
    fn parts_are_covered_balanced_and_in_range() {
        let (xadj, adjncy, adjwgt, vwgt) = random_graph(300, 200, 11);
        let total: u64 = vwgt.iter().sum();
        for parts in [2usize, 4, 7] {
            let part = partition(&xadj, &adjncy, &adjwgt, &vwgt, parts, 3);
            assert_eq!(part.len(), 300);
            let mut load = vec![0u64; parts];
            for (v, &p) in part.iter().enumerate() {
                assert!((p as usize) < parts, "part id out of range");
                load[p as usize] += vwgt[v];
            }
            let cap = (total * 11).div_ceil(10 * parts as u64).max(20);
            for (p, &l) in load.iter().enumerate() {
                assert!(l > 0, "part {p} is empty");
                assert!(l <= cap, "part {p} overweight: {l} > {cap}");
            }
        }
    }

    #[test]
    fn refinement_beats_or_matches_a_round_robin_strawman() {
        let (xadj, adjncy, adjwgt, vwgt) = random_graph(400, 300, 23);
        let part = partition(&xadj, &adjncy, &adjwgt, &vwgt, 4, 17);
        let strawman: Vec<u32> = (0..400).map(|v| (v % 4) as u32).collect();
        let ours = cut_weight(&xadj, &adjncy, &adjwgt, &part);
        let theirs = cut_weight(&xadj, &adjncy, &adjwgt, &strawman);
        assert!(
            ours < theirs,
            "BFS growth + refinement should beat modulo striping: {ours} vs {theirs}"
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint 4-cycles.
        let xadj = vec![0u32, 2, 4, 6, 8, 10, 12, 14, 16];
        let adjncy = vec![1u32, 3, 0, 2, 1, 3, 0, 2, 5, 7, 4, 6, 5, 7, 4, 6];
        let adjwgt = vec![1u64; 16];
        let vwgt = vec![1u64; 8];
        let part = partition(&xadj, &adjncy, &adjwgt, &vwgt, 2, 0);
        assert_eq!(part.len(), 8);
        assert!(part.iter().all(|&p| p < 2));
        assert!(part.contains(&0) && part.contains(&1));
    }
}
